#pragma once

// Bench-history ledger and regression gate (docs/observability.md "Bench
// history & regression gate"). Each merged bench_results.json is folded
// into an append-only JSONL ledger — one sesp-perf/1 line per bench record:
//
//   {"schema": "sesp-perf/1", "bench": "faults", "commit": "5685dcb",
//    "recorded_unix_ms": 1754600000000, "quick": false, "ok": true,
//    "wall_seconds": 4.8, "steps": 3301868, "steps_per_sec": 686678.9,
//    "runs": 81, "profile": {"sim.step": {"count": N, "total_ns": T}, ...}}
//
// check_history() then compares, per (bench, quick) series, the newest
// steps_per_sec against the median of a rolling window of prior entries,
// with a noise-aware tolerance: the allowed drop is the larger of a fixed
// floor and a multiple of the window's median absolute deviation, so noisy
// benches get wide gates and stable benches tight ones. Fewer than
// `min_samples` priors passes with a note — a fresh ledger never fails.
//
// The ledger is plain JSONL so `git log -p bench_history.jsonl` reads as a
// perf trajectory; unknown future fields are preserved by readers that
// re-render (parse → write_json_value round-trips).

#include <cstdint>
#include <string>
#include <vector>

namespace sesp::obs {

struct PerfPhase {
  std::string name;  // profile phase, e.g. "sim.step"
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
};

struct PerfEntry {
  std::string bench;
  std::string commit;  // short hash or "unknown" — never derived in-tool
  std::int64_t recorded_unix_ms = 0;
  bool quick = false;  // SESP_BENCH_QUICK runs form their own series
  bool ok = false;
  double wall_seconds = 0.0;
  std::int64_t steps = 0;
  double steps_per_sec = 0.0;
  std::int64_t runs = 0;
  std::vector<PerfPhase> profile;  // phases with count > 0 only
};

// Extracts one PerfEntry per embedded bench record from a merged
// sesp-bench-results/1 document. Accepts sesp-bench/1 records (empty
// profile) and /2 (profile folded to count/total_ns per phase). Returns
// false (and fills *error) when the document itself is malformed; a
// well-formed document with zero benches yields an empty vector.
bool entries_from_results(const std::string& results_text,
                          const std::string& commit,
                          std::int64_t recorded_unix_ms, bool quick,
                          std::vector<PerfEntry>* out, std::string* error);

// One sesp-perf/1 ledger line (no trailing newline).
std::string render_perf_entry(const PerfEntry& entry);

// Parses one ledger line; false on malformed input or wrong schema.
bool parse_perf_entry(const std::string& line, PerfEntry* out,
                      std::string* error);

// Loads every parseable entry of a JSONL ledger text in file order;
// malformed lines are counted into *skipped (torn tails tolerated — the
// ledger is append-only and a killed writer may tear its last line).
std::vector<PerfEntry> parse_perf_ledger(const std::string& text,
                                         std::int64_t* skipped);

struct PerfCheckOptions {
  int window = 8;        // prior samples considered per series
  int min_samples = 3;   // fewer priors → pass with a note
  double min_drop = 0.25;   // always-allowed fractional slowdown
  double mad_mult = 6.0;    // noise width multiplier
};

struct PerfCheck {
  std::string bench;
  bool quick = false;
  double current = 0.0;       // newest steps_per_sec
  double baseline = 0.0;      // median of the prior window
  double allowed_drop = 0.0;  // fraction of baseline tolerated
  int samples = 0;            // priors actually used
  bool regression = false;
  std::string note;  // human-readable verdict line
};

// Verdict per (bench, quick) series: the last entry in file order is the
// candidate, earlier entries the history. Entries with ok=false are
// excluded from baselines (a failed bench's throughput is meaningless).
std::vector<PerfCheck> check_history(const std::vector<PerfEntry>& entries,
                                     const PerfCheckOptions& opt);

}  // namespace sesp::obs
