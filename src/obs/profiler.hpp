#pragma once

// Scoped phase profiler for the hot loops (docs/observability.md
// "Profiling"). A Profiler keeps one PhaseStat per fixed ProfilePhase —
// exact event counts, accumulated wall-clock, exact min/max, and a small
// ring of the most recent durations — and ProfileScope is the RAII timer
// dropped into the simulator/verifier/exec hot paths.
//
// Like the rest of src/obs, profiling is nullable: a null Profiler* makes
// ProfileScope a single-branch no-op with no clock reads, so the
// unprofiled hot path pays nothing. Phases are a closed enum (not strings)
// so record() is two clock reads plus array arithmetic — cheap enough to
// sit inside the per-event simulator loop.
//
// Concurrency follows the ObservationShard contract (docs/parallelism.md):
// a Profiler is single-writer; parallel sweeps give every task shard its
// own, and merge_from() folds shards in task-index order. Counts and
// extrema merge deterministically, so *event counts* are invariant across
// --jobs and worker counts (obs_test pins this); durations are wall-clock
// and naturally vary.

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace sesp::obs {

class JsonWriter;

// Closed set of instrumented phases. Names (profile_phase_name) are the
// JSON keys in sesp-bench/2 records and sesp-run/1 "profile" sections.
enum class ProfilePhase : std::uint8_t {
  kEventQueuePop = 0,  // sim.queue_pop    — event-queue pop + depth gauge
  kDeliver,            // sim.deliver      — message delivery (MPM/P2P)
  kProcessStep,        // sim.step         — process compute step
  kSchedule,           // sim.schedule     — next-step Ratio arithmetic
  kAdmissibility,      // verify.admissibility
  kSessionCount,       // verify.count     — session/round counting
  kExecTask,           // exec.task        — one parallel sweep task
  kShardGather,        // shard.gather     — peer-journal gathering
  kServeRequest,       // serve.request    — parse→reply for one request
  kServeExec,          // serve.exec       — compute under a serve job
  kCount
};

inline constexpr int kProfilePhases = static_cast<int>(ProfilePhase::kCount);

const char* profile_phase_name(ProfilePhase phase) noexcept;

// Per-phase aggregate. `recent_ns` is a ring of the last kRecentSamples
// durations in chronological order (oldest first once wrapped).
struct PhaseStat {
  static constexpr int kRecentSamples = 32;

  std::int64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t min_ns = 0;  // meaningful only when count > 0
  std::int64_t max_ns = 0;

  std::array<std::int64_t, kRecentSamples> ring{};
  std::int32_t ring_size = 0;
  std::int32_t ring_next = 0;

  void record(std::int64_t dur_ns) noexcept;
  // Other's samples are strictly "later": counts/totals add, extrema
  // combine, and other's ring entries append after ours (keeping the last
  // kRecentSamples overall) — deterministic given a fixed merge order.
  void merge_from(const PhaseStat& other) noexcept;
  // Ring contents in chronological order.
  std::array<std::int64_t, kRecentSamples> recent() const noexcept;
};

class Profiler {
 public:
  using clock = std::chrono::steady_clock;

  void record(ProfilePhase phase, std::int64_t dur_ns) noexcept {
    stats_[static_cast<std::size_t>(phase)].record(dur_ns);
  }

  const PhaseStat& stat(ProfilePhase phase) const noexcept {
    return stats_[static_cast<std::size_t>(phase)];
  }

  // True when no phase recorded anything.
  bool empty() const noexcept;
  std::int64_t total_ns() const noexcept;

  // Folds a task shard's profiler into this one; call in task-index order
  // (same contract as MetricsRegistry::merge_from).
  void merge_from(const Profiler& other) noexcept;

  // {"sim.queue_pop":{"count":N,"total_ns":...,"min_ns":...,"max_ns":...,
  //  "mean_ns":...,"recent_ns":[...]}, ...} — phases with count 0 are
  // emitted with just {"count":0} so the key set is schema-stable.
  void write_json(JsonWriter& w) const;

  // Human-readable table (phase, count, total ms, mean/min/max µs), sorted
  // by total time descending; used by the tools' --profile stderr report.
  std::string to_string() const;

 private:
  std::array<PhaseStat, kProfilePhases> stats_{};
};

// Deterministically sampled batch timer for the per-event hot loops
// (docs/performance.md "Reading --profile tables"). The calendar-queue
// simulator cores process events in same-time lane runs; timing every run
// with a ProfileScope would put two clock reads on paths that now cost tens
// of nanoseconds. A SampledPhaseTimer instead times every kEvery-th
// begin()/end() bracket (counter-based, so which batches get timed is a
// deterministic function of the event stream — profile COUNTS stay
// invariant across --jobs and worker counts, the obs_test contract).
// count in the resulting PhaseStat is the number of SAMPLED batches, not
// events; total_ns scales accordingly.
class SampledPhaseTimer {
 public:
  static constexpr std::uint32_t kEvery = 64;  // power of two

  SampledPhaseTimer(Profiler* profiler, ProfilePhase phase) noexcept
      : profiler_(profiler), phase_(phase) {}

  void begin() noexcept {
    if (profiler_ != nullptr && (counter_++ & (kEvery - 1)) == 0) {
      timing_ = true;
      start_ = Profiler::clock::now();
    }
  }
  void end() noexcept {
    if (timing_) {
      timing_ = false;
      profiler_->record(
          phase_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Profiler::clock::now() - start_)
                      .count());
    }
  }

 private:
  Profiler* profiler_;
  ProfilePhase phase_;
  std::uint32_t counter_ = 0;
  bool timing_ = false;
  Profiler::clock::time_point start_;
};

// RAII phase timer. Null profiler: one branch, no clock reads.
class ProfileScope {
 public:
  ProfileScope(Profiler* profiler, ProfilePhase phase) noexcept
      : profiler_(profiler), phase_(phase) {
    if (profiler_) start_ = Profiler::clock::now();
  }
  ~ProfileScope() {
    if (profiler_)
      profiler_->record(
          phase_, std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Profiler::clock::now() - start_)
                      .count());
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_;
  ProfilePhase phase_;
  Profiler::clock::time_point start_;
};

}  // namespace sesp::obs
