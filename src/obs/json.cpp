#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace sesp::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

JsonWriter::~JsonWriter() = default;

void JsonWriter::before_value() {
  if (stack_.empty()) {
    if (root_written_) std::abort();  // two top-level values
    root_written_ = true;
    return;
  }
  Frame& top = stack_.back();
  if (top.array) {
    if (top.has_value) os_ << ',';
    top.has_value = true;
  } else {
    if (!top.has_key) std::abort();  // object value without a key
    top.has_key = false;
  }
}

void JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Frame{false, false, false});
  os_ << '{';
}

void JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().array || stack_.back().has_key)
    std::abort();
  stack_.pop_back();
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Frame{true, false, false});
  os_ << '[';
}

void JsonWriter::end_array() {
  if (stack_.empty() || !stack_.back().array) std::abort();
  stack_.pop_back();
  os_ << ']';
}

void JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back().array || stack_.back().has_key)
    std::abort();
  Frame& top = stack_.back();
  if (top.has_value) os_ << ',';
  top.has_value = true;
  top.has_key = true;
  os_ << '"' << json_escape(name) << "\":";
}

void JsonWriter::value(std::string_view text) {
  before_value();
  os_ << '"' << json_escape(text) << '"';
}

void JsonWriter::value(std::int64_t number) {
  before_value();
  os_ << number;
}

void JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    os_ << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  os_ << buf;
}

void JsonWriter::value(bool boolean) {
  before_value();
  os_ << (boolean ? "true" : "false");
}

void JsonWriter::null_value() {
  before_value();
  os_ << "null";
}

const JsonValue* JsonValue::find(std::string_view name) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [key, value] : object)
    if (key == name) return &value;
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error,
         std::size_t* error_offset)
      : text_(text), error_(error), error_offset_(error_offset) {}

  std::optional<JsonValue> parse() {
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_ && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
      if (error_offset_) *error_offset_ = pos_;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    const std::string_view got = text_.substr(pos_, word.size());
    if (got != word) {
      // A literal cut off by the end of input is truncation, not a typo:
      // report it at the end so offset-based truncation detection works.
      if (pos_ + got.size() == text_.size() &&
          got == word.substr(0, got.size())) {
        pos_ = text_.size();
        fail("unexpected end of input");
      } else {
        fail("bad literal");
      }
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return false;
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return false;
              }
            }
            // UTF-8 encode (BMP only; our writer never emits surrogates).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("bad escape");
            return false;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    if (depth_ >= kMaxDepth) {
      // A recursion cap, not a truncation: adversarial nesting ("[[[[...")
      // must fail cleanly before the call stack does.
      fail("nesting too deep");
      return false;
    }
    ++depth_;
    const bool ok = parse_value_inner(out);
    --depth_;
    return ok;
  }

  bool parse_value_inner(JsonValue& out) {
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case '[': {
        ++pos_;
        out.kind = JsonValue::Kind::kArray;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue elem;
          if (!parse_value(elem)) return false;
          out.array.push_back(std::move(elem));
          skip_ws();
          if (pos_ >= text_.size()) {
            fail("unterminated array");
            return false;
          }
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          fail("expected ',' or ']'");
          return false;
        }
      }
      case '{': {
        ++pos_;
        out.kind = JsonValue::Kind::kObject;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string name;
          if (!parse_string(name)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            fail("expected ':'");
            return false;
          }
          ++pos_;
          JsonValue member;
          if (!parse_value(member)) return false;
          out.object.emplace_back(std::move(name), std::move(member));
          skip_ws();
          if (pos_ >= text_.size()) {
            fail("unterminated object");
            return false;
          }
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          fail("expected ',' or '}'");
          return false;
        }
      }
      default: {
        // Number.
        const std::size_t start = pos_;
        if (text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
          ++pos_;
        if (pos_ == start) {
          fail("unexpected character");
          return false;
        }
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        out.number = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
          fail("bad number");
          return false;
        }
        out.kind = JsonValue::Kind::kNumber;
        return true;
      }
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::string* error_;
  std::size_t* error_offset_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error,
                                    std::size_t* error_offset) {
  std::string scratch;
  Parser parser(text, error ? error : &scratch, error_offset);
  return parser.parse();
}

void write_json_value(JsonWriter& w, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull: w.null_value(); return;
    case JsonValue::Kind::kBool: w.value(value.boolean); return;
    case JsonValue::Kind::kNumber: {
      // Integral values round-trip as integers (ts/pid/tid stay clean).
      const double d = value.number;
      if (std::isfinite(d) && d >= -9.0e18 && d <= 9.0e18) {
        const auto i = static_cast<std::int64_t>(d);
        if (static_cast<double>(i) == d) {
          w.value(i);
          return;
        }
      }
      w.value(d);
      return;
    }
    case JsonValue::Kind::kString: w.value(value.string); return;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& elem : value.array) write_json_value(w, elem);
      w.end_array();
      return;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [name, member] : value.object) {
        w.key(name);
        write_json_value(w, member);
      }
      w.end_object();
      return;
  }
}

}  // namespace sesp::obs
