#pragma once

// Metrics registry for the simulators and tools: counters (monotone int64),
// gauges (last value + high-water mark) and exact-Ratio-aware histograms.
// Model-time quantities are exact rationals everywhere in this library, so
// the histogram keeps min/max as exact Ratios (those are the values
// compared against the paper's bounds) and only the mean and the bucket
// shape as doubles — the same philosophy as util/stats.Summary.
//
// Hot-path contract: instruments are resolved by name ONCE (Observer caches
// the pointers); per-event updates are a single branch plus an integer
// add. References returned by the registry are stable for its lifetime
// (node-based map).
//
// Concurrency contract (docs/observability.md, docs/parallelism.md): a
// MetricsRegistry is single-writer — no instrument may be updated from two
// threads. Parallel sweeps therefore shard: every task records into its own
// task-private registry (obs::ObservationShard) and the shards are folded
// into the parent with merge_from() at the barrier, in task-index order, so
// the merged registry is bit-identical for every worker count. Counters
// merge by sum, gauges take the merged-in value as "written later" and the
// max of high-water marks, histograms merge counts/extrema/buckets (the
// double mean accumulates in merge order, hence the fixed task ordering).

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "util/ratio.hpp"

namespace sesp::obs {

class JsonWriter;

class Counter {
 public:
  void inc(std::int64_t n = 1) noexcept { value_ += n; }
  std::int64_t value() const noexcept { return value_; }

  void merge_from(const Counter& other) noexcept { value_ += other.value_; }

 private:
  std::int64_t value_ = 0;
};

// Last-written value plus high-water mark (queue depths, pending buffers).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_ = v;
    if (v > max_) max_ = v;
  }
  std::int64_t value() const noexcept { return value_; }
  std::int64_t max() const noexcept { return max_; }

  // The merged-in shard is treated as having written later: its last value
  // wins, high-water marks combine. An all-zero shard (its task never
  // touched the gauge, or only ever wrote zero) does not clobber the value.
  void merge_from(const Gauge& other) noexcept {
    if (other.value_ != 0 || other.max_ != 0) value_ = other.value_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  std::int64_t value_ = 0;
  std::int64_t max_ = 0;
};

// Exact min/max, double mean, and a power-of-two bucket shape. Bucket i
// counts values v with upper_bound(i-1) < v <= upper_bound(i) where
// upper_bound(i) = 2^(i + kMinExponent); values at or below 2^kMinExponent
// land in bucket 0, values above the last bound in the overflow bucket.
class Histogram {
 public:
  static constexpr int kBuckets = 24;
  static constexpr int kMinExponent = -8;  // first bound 1/256

  void observe(const Ratio& value);

  std::int64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  // Terminate on empty (harness bug) — same contract as Summary.
  const Ratio& min() const;
  const Ratio& max() const;
  double mean() const;
  const std::array<std::int64_t, kBuckets + 1>& buckets() const noexcept {
    return buckets_;
  }

  // Counts and buckets add, extrema combine; the double sum accumulates in
  // merge order (hence the fixed task ordering in parallel sweeps).
  void merge_from(const Histogram& other);

 private:
  std::int64_t count_ = 0;
  std::optional<Ratio> min_;
  std::optional<Ratio> max_;
  double sum_ = 0.0;
  std::array<std::int64_t, kBuckets + 1> buckets_{};
};

class MetricsRegistry {
 public:
  // Lookup-or-create; returned references stay valid for the registry's
  // lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(JsonWriter& w) const;
  // One JSON object per line, machine-mergeable:
  //   {"metric":"sim.steps","type":"counter","value":123}
  void write_jsonl(std::ostream& os) const;
  // Human-readable aligned listing for --metrics.
  std::string to_string() const;

  // Folds a task shard into this registry (instrument-wise merge_from;
  // instruments missing here are created). Single-writer contract: call
  // from the owning thread, after the shard's task has completed.
  void merge_from(const MetricsRegistry& other);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace sesp::obs
