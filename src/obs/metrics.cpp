#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "obs/json.hpp"

namespace sesp::obs {

void Histogram::observe(const Ratio& value) {
  ++count_;
  if (!min_ || value < *min_) min_ = value;
  if (!max_ || *max_ < value) max_ = value;
  const double v = value.to_double();
  sum_ += v;
  int bucket = 0;
  double bound = 1.0;
  for (int e = 0; e > kMinExponent; --e) bound /= 2.0;  // 2^kMinExponent
  while (bucket < kBuckets && v > bound) {
    bound *= 2.0;
    ++bucket;
  }
  ++buckets_[static_cast<std::size_t>(bucket)];
}

const Ratio& Histogram::min() const {
  if (!min_) std::abort();
  return *min_;
}

const Ratio& Histogram::max() const {
  if (!max_) std::abort();
  return *max_;
}

double Histogram::mean() const {
  if (count_ == 0) std::abort();
  return sum_ / static_cast<double>(count_);
}

void Histogram::merge_from(const Histogram& other) {
  count_ += other.count_;
  if (other.min_ && (!min_ || *other.min_ < *min_)) min_ = other.min_;
  if (other.max_ && (!max_ || *max_ < *other.max_)) max_ = other.max_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c.value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name);
    w.begin_object();
    w.field("value", g.value());
    w.field("max", g.max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.field("count", h.count());
    if (!h.empty()) {
      w.field("min", h.min());
      w.field("max", h.max());
      w.field("min_approx", h.min().to_double());
      w.field("max_approx", h.max().to_double());
      w.field("mean", h.mean());
      w.key("buckets");
      w.begin_array();
      for (const std::int64_t b : h.buckets()) w.value(b);
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void MetricsRegistry::write_jsonl(std::ostream& os) const {
  for (const auto& [name, c] : counters_) {
    JsonWriter w(os);
    w.begin_object();
    w.field("metric", name);
    w.field("type", "counter");
    w.field("value", c.value());
    w.end_object();
    os << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    JsonWriter w(os);
    w.begin_object();
    w.field("metric", name);
    w.field("type", "gauge");
    w.field("value", g.value());
    w.field("max", g.max());
    w.end_object();
    os << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    JsonWriter w(os);
    w.begin_object();
    w.field("metric", name);
    w.field("type", "histogram");
    w.field("count", h.count());
    if (!h.empty()) {
      w.field("min", h.min());
      w.field("max", h.max());
      w.field("mean", h.mean());
    }
    w.end_object();
    os << '\n';
  }
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge_from(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge_from(g);
  for (const auto& [name, h] : other.histograms_)
    histograms_[name].merge_from(h);
}

std::string MetricsRegistry::to_string() const {
  // Aligned human table for --metrics: one row per instrument, names padded
  // to a common column, gauges with their high-water mark and histograms
  // with the exact-Ratio extrema (the values compared against the paper's
  // bounds). Pinned byte-for-byte by obs_test's golden rendering test.
  std::size_t width = 0;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, g] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms_)
    width = std::max(width, name.size());
  std::ostringstream os;
  const auto pad = [&](const std::string& name) {
    os << "  " << name << std::string(width - name.size(), ' ');
  };
  for (const auto& [name, c] : counters_) {
    pad(name);
    os << "  counter    " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    pad(name);
    os << "  gauge      " << g.value() << " (max " << g.max() << ")\n";
  }
  for (const auto& [name, h] : histograms_) {
    pad(name);
    os << "  histogram  count=" << h.count();
    if (!h.empty())
      os << " min=" << h.min().to_string() << " max=" << h.max().to_string()
         << " mean=" << h.mean();
    os << "\n";
  }
  return os.str();
}

}  // namespace sesp::obs
