#pragma once

// Minimal JSON support for the observability layer: a streaming writer with
// correct escaping (used by the metrics/trace/bench-record serializers) and
// a small recursive-descent parser (used by the bench-record aggregator and
// the round-trip tests). Deliberately tiny — no external dependency, no
// DOM mutation API, numbers parsed as doubles (all our serialized numbers
// fit; exact rationals travel as "num/den" strings, never as numbers).

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/ratio.hpp"

namespace sesp::obs {

// Escapes for inclusion inside a JSON string literal (no surrounding
// quotes): ", \, control characters.
std::string json_escape(std::string_view text);

// Streaming writer: begin_object/key/value calls emit valid JSON with
// commas handled automatically. Misuse (a value where a key is required)
// terminates — serializer bugs must not produce silently invalid records.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(std::int64_t number);
  void value(double number);  // non-finite serializes as null
  void value(bool boolean);
  // Exact rationals serialize as their text form ("7/2"); callers that also
  // want a float for plotting emit a sibling *_approx field.
  void value(const Ratio& ratio) { value(ratio.to_string()); }
  void null_value();

  // Convenience for the common `"key": value` pair.
  template <typename T>
  void field(std::string_view name, const T& v) {
    key(name);
    value(v);
  }

 private:
  void before_value();

  std::ostream& os_;
  // One entry per open container: whether a value was already emitted
  // (comma needed) — top-level mirrors it for single-value documents.
  struct Frame {
    bool array = false;
    bool has_value = false;
    bool has_key = false;
  };
  std::vector<Frame> stack_;
  bool root_written_ = false;
};

// Parsed JSON value. Object member order is preserved (records are written
// and compared in a canonical order).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  std::int64_t as_int64() const { return static_cast<std::int64_t>(number); }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view name) const;
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage
// is an error). Returns nullopt and fills *error on malformed input;
// *error_offset (optional) receives the byte offset of the failure, which
// lets callers distinguish a document truncated at the end (offset ==
// length of the meaningful prefix — e.g. a record torn by a killed writer)
// from corruption in the middle.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr,
                                    std::size_t* error_offset = nullptr);

// Re-serializes a parsed value through the streaming writer (member order
// preserved, doubles via %.17g, non-finite as null). parse → write →
// parse is a fixpoint — the round-trip property the fuzz tests pin, and
// what sesp_trace_merge uses to fold foreign trace lines into one
// document without hand-gluing strings.
void write_json_value(JsonWriter& w, const JsonValue& value);

}  // namespace sesp::obs
