#include "obs/bench_record.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "obs/json.hpp"

namespace sesp::obs {

BenchRecorder::BenchRecorder(std::string name)
    : name_(std::move(name)),
      observer_(&metrics_, nullptr),
      start_(std::chrono::steady_clock::now()) {
  const char* profile_env = std::getenv("SESP_BENCH_PROFILE");
  if (!profile_env || std::string_view(profile_env) != "0")
    observer_.profiler = &profiler_;
  previous_default_ = set_default_observer(&observer_);
}

BenchRecorder::~BenchRecorder() {
  if (!finished_) finish(false);
  set_default_observer(previous_default_);
}

void BenchRecorder::add_row(PerfRow row) { rows_.push_back(std::move(row)); }

void BenchRecorder::note(const std::string& key, double value) {
  Note n;
  n.key = key;
  n.kind = Note::Kind::kDouble;
  n.number = value;
  notes_.push_back(std::move(n));
}

void BenchRecorder::note(const std::string& key, std::int64_t value) {
  Note n;
  n.key = key;
  n.kind = Note::Kind::kInt;
  n.integer = value;
  notes_.push_back(std::move(n));
}

void BenchRecorder::note(const std::string& key, const std::string& value) {
  Note n;
  n.key = key;
  n.kind = Note::Kind::kString;
  n.text = value;
  notes_.push_back(std::move(n));
}

std::string BenchRecorder::output_path() const {
  const char* dir = std::getenv("SESP_BENCH_JSON_DIR");
  std::string path = dir && *dir ? std::string(dir) + "/" : std::string();
  return path + "BENCH_" + name_ + ".json";
}

std::string BenchRecorder::render(bool ok) const {
  const double wall =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start_)
          .count();
  const std::int64_t steps = observer_.steps->value();

  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "sesp-bench/2");
  w.field("bench", name_);
  w.field("ok", ok);
  w.field("wall_seconds", wall);
  w.field("steps", steps);
  w.field("steps_per_sec",
          wall > 0.0 ? static_cast<double>(steps) / wall : 0.0);
  w.field("runs", observer_.runs->value());
  w.key("rows");
  w.begin_array();
  for (const PerfRow& row : rows_) {
    w.begin_object();
    w.field("cell", row.cell);
    w.field("measure", row.measure);
    w.field("lower", row.lower);
    w.field("measured", row.measured);
    w.field("upper", row.upper);
    w.field("lower_approx", row.lower.to_double());
    w.field("measured_approx", row.measured.to_double());
    w.field("upper_approx", row.upper.to_double());
    w.field("solved", row.solved);
    w.field("admissible", row.admissible);
    w.field("upper_ok", row.upper_ok);
    w.field("lower_reached", row.lower_reached);
    w.end_object();
  }
  w.end_array();
  w.key("notes");
  w.begin_object();
  for (const Note& n : notes_) {
    w.key(n.key);
    switch (n.kind) {
      case Note::Kind::kDouble: w.value(n.number); break;
      case Note::Kind::kInt: w.value(n.integer); break;
      case Note::Kind::kString: w.value(n.text); break;
    }
  }
  w.end_object();
  w.key("metrics");
  metrics_.write_json(w);
  w.key("profile");
  profiler_.write_json(w);
  w.end_object();
  return os.str();
}

int BenchRecorder::finish(bool ok) {
  if (finished_) return first_ok_ ? 0 : 1;
  finished_ = true;
  first_ok_ = ok;
  const std::string path = output_path();
  std::ofstream out(path);
  if (out) {
    out << render(ok) << '\n';
    std::cout << "perf record written to " << path << "\n";
  } else {
    std::cerr << "warning: cannot write " << path << "\n";
  }
  return ok ? 0 : 1;
}

// --- Aggregation ------------------------------------------------------------

BenchRecordCheck classify_bench_record(const std::string& text,
                                       std::string* error) {
  std::size_t trimmed = text.size();
  while (trimmed > 0 &&
         (text[trimmed - 1] == '\n' || text[trimmed - 1] == '\r' ||
          text[trimmed - 1] == ' ' || text[trimmed - 1] == '\t'))
    --trimmed;
  if (trimmed == 0) {
    if (error) *error = "empty record (truncated at birth)";
    return BenchRecordCheck::kTruncated;
  }
  std::string parse_error;
  std::size_t offset = 0;
  const auto doc =
      parse_json(std::string_view(text).substr(0, trimmed), &parse_error,
                 &offset);
  if (!doc) {
    if (error) *error = "parse error: " + parse_error;
    return offset >= trimmed ? BenchRecordCheck::kTruncated
                             : BenchRecordCheck::kMalformed;
  }
  return validate_bench_record(text, error) ? BenchRecordCheck::kValid
                                            : BenchRecordCheck::kMalformed;
}

bool validate_bench_record(const std::string& text, std::string* error) {
  std::string parse_error;
  const auto doc = parse_json(text, &parse_error);
  if (!doc) {
    if (error) *error = "parse error: " + parse_error;
    return false;
  }
  if (!doc->is_object()) {
    if (error) *error = "record is not a JSON object";
    return false;
  }
  const auto require = [&](const char* name, JsonValue::Kind kind) {
    const JsonValue* v = doc->find(name);
    if (!v || v->kind != kind) {
      if (error)
        *error = std::string("missing or mistyped field \"") + name + "\"";
      return false;
    }
    return true;
  };
  if (!require("schema", JsonValue::Kind::kString)) return false;
  const std::string& schema = doc->find("schema")->string;
  if (schema != "sesp-bench/1" && schema != "sesp-bench/2") {
    if (error) *error = "unknown schema \"" + schema +
                        "\" (want sesp-bench/1 or sesp-bench/2)";
    return false;
  }
  // /2 added the per-phase profiler dump; /1 records (older ledgers) have
  // none and must keep validating.
  if (schema == "sesp-bench/2" &&
      !require("profile", JsonValue::Kind::kObject))
    return false;
  if (!require("bench", JsonValue::Kind::kString)) return false;
  if (!require("ok", JsonValue::Kind::kBool)) return false;
  if (!require("wall_seconds", JsonValue::Kind::kNumber)) return false;
  if (!require("steps", JsonValue::Kind::kNumber)) return false;
  if (!require("steps_per_sec", JsonValue::Kind::kNumber)) return false;
  if (!require("runs", JsonValue::Kind::kNumber)) return false;
  if (!require("rows", JsonValue::Kind::kArray)) return false;
  if (!require("notes", JsonValue::Kind::kObject)) return false;
  if (!require("metrics", JsonValue::Kind::kObject)) return false;
  for (const JsonValue& row : doc->find("rows")->array) {
    for (const char* field : {"cell", "measure", "lower", "measured", "upper"})
      if (!row.find(field) || !row.find(field)->is_string()) {
        if (error)
          *error = std::string("row missing string field \"") + field + "\"";
        return false;
      }
    for (const char* field :
         {"solved", "admissible", "upper_ok", "lower_reached"})
      if (!row.find(field) || !row.find(field)->is_bool()) {
        if (error)
          *error = std::string("row missing bool field \"") + field + "\"";
        return false;
      }
  }
  return true;
}

BenchAggregate aggregate_bench_records(
    const std::vector<std::pair<std::string, std::string>>& named_texts) {
  BenchAggregate agg;

  // First pass: classify (and keep the parsed documents), so the summary
  // fields can precede the bulk payload in one writer pass.
  std::vector<JsonValue> valid_docs;
  for (const auto& [name, text] : named_texts) {
    std::string error;
    switch (classify_bench_record(text, &error)) {
      case BenchRecordCheck::kValid: {
        auto doc = parse_json(text);
        ++agg.records;
        if (!doc->find("ok")->boolean) {
          ++agg.failed;
          agg.failures.push_back(doc->find("bench")->string);
        }
        valid_docs.push_back(std::move(*doc));
        break;
      }
      case BenchRecordCheck::kTruncated:
        ++agg.truncated;
        agg.skipped.push_back(name + " (" + error + ")");
        break;
      case BenchRecordCheck::kMalformed:
        ++agg.malformed;
        agg.failures.push_back(name + " (" + error + ")");
        break;
    }
  }

  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "sesp-bench-results/1");
  w.field("records", agg.records);
  w.field("failed", agg.failed);
  w.field("malformed", agg.malformed);
  w.field("truncated", agg.truncated);
  w.field("all_ok", agg.all_ok());
  w.key("failures");
  w.begin_array();
  for (const std::string& f : agg.failures) w.value(f);
  w.end_array();
  w.key("skipped");
  w.begin_array();
  for (const std::string& s : agg.skipped) w.value(s);
  w.end_array();
  // Embed the validated records through the writer (parse → write is a
  // fixpoint for JsonWriter-produced records, so the bytes match what the
  // bench wrote) — no string surgery on the finished document.
  w.key("benches");
  w.begin_array();
  for (const JsonValue& doc : valid_docs) write_json_value(w, doc);
  w.end_array();
  w.end_object();
  agg.results_json = os.str();
  return agg;
}

}  // namespace sesp::obs
