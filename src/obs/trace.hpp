#pragma once

// Wall-clock span tracing for the simulators, adversaries and tools. A
// TraceSink collects structured events timed with steady_clock; Span is the
// RAII profiling scope (records one complete event with its duration on
// destruction); instant() records point events (injected faults, SimErrors,
// watchdog trips).
//
// Both tolerate a null sink: `Span s(nullptr, ...)` is a no-op, so run
// loops can write `Span s(obs ? obs->trace : nullptr, ...)` and stay
// allocation-free when no trace is attached.
//
// Serialization is JSONL, one event per line, Chrome-trace flavoured
// ("ph":"X" complete / "ph":"i" instant, microsecond timestamps) so the
// files load in standard trace viewers as well as in scripts.

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace sesp::obs {

struct TraceEvent {
  enum class Phase : std::uint8_t { kComplete, kInstant };

  Phase phase = Phase::kInstant;
  std::string name;      // e.g. "mpm.run", "fault.crash", "error.no_progress"
  std::string category;  // "sim" | "adversary" | "verify" | "fault" | "error"
  std::int64_t start_ns = 0;     // since sink creation
  std::int64_t duration_ns = 0;  // kComplete only
  std::int32_t depth = 0;        // span nesting depth at record time
  std::string args_json;         // pre-rendered JSON object or empty
};

class Span;

class TraceSink {
 public:
  TraceSink();

  // Nanoseconds since this sink was created.
  std::int64_t now_ns() const;

  // Wall-clock (system_clock) microseconds at sink creation — the anchor
  // sesp_trace_merge uses to align traces from different processes onto
  // one timeline. Event timestamps stay steady_clock-relative.
  std::int64_t epoch_unix_us() const noexcept { return epoch_unix_us_; }

  // Sink-relative nanoseconds for an absolute wall-clock millisecond stamp
  // (lease deadlines, launch events) — may be negative for stamps taken
  // before the sink existed.
  std::int64_t ns_for_unix_ms(std::int64_t unix_ms) const noexcept {
    return (unix_ms * 1000 - epoch_unix_us_) * 1000;
  }

  void instant(std::string name, std::string category,
               std::string args_json = std::string());

  // Instant at an explicit sink-relative timestamp: retro-records events
  // whose times were captured elsewhere (heartbeat lease renewals, worker
  // launch transitions) without breaking the single-writer contract.
  void instant_at(std::int64_t start_ns, std::string name,
                  std::string category,
                  std::string args_json = std::string());

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::int64_t dropped() const noexcept { return dropped_; }
  std::int32_t depth() const noexcept { return depth_; }

  // Safety valve: events past the cap are counted but not stored, so a
  // pathological run cannot exhaust memory through its own telemetry.
  void set_max_events(std::size_t cap) noexcept { max_events_ = cap; }

  void write_jsonl(std::ostream& os) const;

  // Folds a task shard's events into this sink (parallel sweeps give every
  // task its own sink; see docs/parallelism.md). Timestamps are re-based
  // from the shard's epoch onto ours so the merged timeline stays
  // monotone-ish in wall time; events past our cap are counted as dropped.
  void merge_from(const TraceSink& other);

 private:
  friend class Span;
  void record(TraceEvent ev);

  std::chrono::steady_clock::time_point epoch_;
  std::int64_t epoch_unix_us_ = 0;
  std::vector<TraceEvent> events_;
  std::int64_t dropped_ = 0;
  std::size_t max_events_ = 1'000'000;
  std::int32_t depth_ = 0;
};

// RAII profiling scope. The event is recorded when the span closes, with
// the start time and nesting depth captured at open.
class Span {
 public:
  Span(TraceSink* sink, std::string_view name, std::string_view category,
       std::string args_json = std::string());
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attach or replace the rendered args object (e.g. results known only at
  // scope exit).
  void set_args(std::string args_json);

 private:
  TraceSink* sink_;
  std::string name_;
  std::string category_;
  std::string args_json_;
  std::int64_t start_ns_ = 0;
  std::int32_t depth_ = 0;
};

// Tiny helper for rendering span/instant args without pulling JsonWriter
// into every run loop: joins pre-escaped "key":value fragments.
std::string args_object(std::initializer_list<std::string> fields);
std::string arg_int(std::string_view key, std::int64_t value);
std::string arg_str(std::string_view key, std::string_view value);

}  // namespace sesp::obs
