#include "obs/observer.hpp"

namespace sesp::obs {

namespace {
Observer* g_default_observer = nullptr;

// Short machine tag per error code for trace event names
// ("error.step_limit" etc.).
const char* error_tag(SimErrorCode code) {
  switch (code) {
    case SimErrorCode::kInvalidSpec: return "invalid_spec";
    case SimErrorCode::kUnknownMessage: return "unknown_message";
    case SimErrorCode::kBadRecipient: return "bad_recipient";
    case SimErrorCode::kStepLimitExceeded: return "step_limit";
    case SimErrorCode::kTimeLimitExceeded: return "time_limit";
    case SimErrorCode::kNoProgress: return "no_progress";
    case SimErrorCode::kNonMonotonicSchedule: return "non_monotonic";
  }
  return "unknown";
}
}  // namespace

Observer::Observer(MetricsRegistry* m, TraceSink* t) : metrics(m), trace(t) {
  if (!metrics) return;
  runs = &metrics->counter("sim.runs");
  steps = &metrics->counter("sim.steps");
  messages_sent = &metrics->counter("sim.messages.sent");
  messages_delivered = &metrics->counter("sim.messages.delivered");
  messages_dropped = &metrics->counter("sim.messages.dropped");
  shared_reads = &metrics->counter("sim.shared.reads");
  shared_writes = &metrics->counter("sim.shared.writes");
  errors = &metrics->counter("sim.errors");
  faults_injected = &metrics->counter("faults.injected");
  sessions = &metrics->counter("verify.sessions");
  verified_runs = &metrics->counter("verify.runs");
  retimer_iterations = &metrics->counter("adversary.retimer.iterations");
  exhaustive_runs = &metrics->counter("adversary.exhaustive.runs");
  pending_depth = &metrics->gauge("sim.pending.depth");
  event_queue_depth = &metrics->gauge("sim.event_queue.depth");
  step_margin = &metrics->histogram("sim.watchdog.step_margin");
  time_margin = &metrics->histogram("sim.watchdog.time_margin");
  termination_time = &metrics->histogram("verify.termination_time");
}

ObservationShard::ObservationShard(Observer* parent) : parent_(parent) {
  if (!parent_) return;
  if (parent_->metrics) metrics_.emplace();
  if (parent_->trace) trace_.emplace();
  if (parent_->profiler) profiler_.emplace();
  observer_ = Observer(metrics_ ? &*metrics_ : nullptr,
                       trace_ ? &*trace_ : nullptr);
  observer_.profiler = profiler_ ? &*profiler_ : nullptr;
}

void ObservationShard::merge_into_parent() {
  if (!parent_) return;
  if (metrics_ && parent_->metrics) parent_->metrics->merge_from(*metrics_);
  if (trace_ && parent_->trace) parent_->trace->merge_from(*trace_);
  if (profiler_ && parent_->profiler)
    parent_->profiler->merge_from(*profiler_);
}

Observer* default_observer() noexcept { return g_default_observer; }

Observer* set_default_observer(Observer* observer) noexcept {
  Observer* previous = g_default_observer;
  g_default_observer = observer;
  return previous;
}

void observe_fault(Observer* obs, std::string_view kind, ProcessId process,
                   const Time& time) {
  if (!obs) return;
  if (obs->faults_injected) obs->faults_injected->inc();
  if (obs->trace)
    obs->trace->instant(
        "fault." + std::string(kind), "fault",
        args_object({arg_int("process", process),
                     arg_str("time", time.to_string())}));
}

void observe_error(Observer* obs, const SimError& error) {
  if (!obs) return;
  if (obs->errors) obs->errors->inc();
  if (obs->trace)
    obs->trace->instant(
        "error." + std::string(error_tag(error.code)), "error",
        args_object(
            {arg_str("detail", error.detail),
             arg_int("process", error.process),
             arg_int("step_index", error.step_index),
             error.time ? arg_str("time", error.time->to_string())
                        : std::string()}));
}

void observe_watchdog_margins(Observer* obs, std::int64_t steps_used,
                              std::int64_t max_steps, const Time& end_time,
                              const Time& max_time) {
  if (!obs || !obs->step_margin) return;
  if (max_steps > 0) {
    const std::int64_t left =
        steps_used >= max_steps ? 0 : max_steps - steps_used;
    obs->step_margin->observe(Ratio(left, max_steps));
  }
  if (max_time.is_positive()) {
    const Ratio left =
        max_time < end_time ? Ratio(0) : (max_time - end_time) / max_time;
    obs->time_margin->observe(left);
  }
}

}  // namespace sesp::obs
