#include "obs/trace.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace sesp::obs {

TraceSink::TraceSink()
    : epoch_(std::chrono::steady_clock::now()),
      epoch_unix_us_(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count()) {}

std::int64_t TraceSink::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceSink::record(TraceEvent ev) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(ev));
}

void TraceSink::instant(std::string name, std::string category,
                        std::string args_json) {
  instant_at(now_ns(), std::move(name), std::move(category),
             std::move(args_json));
}

void TraceSink::instant_at(std::int64_t start_ns, std::string name,
                           std::string category, std::string args_json) {
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kInstant;
  ev.name = std::move(name);
  ev.category = std::move(category);
  ev.start_ns = start_ns;
  ev.depth = depth_;
  ev.args_json = std::move(args_json);
  record(std::move(ev));
}

void TraceSink::merge_from(const TraceSink& other) {
  const std::int64_t shift =
      std::chrono::duration_cast<std::chrono::nanoseconds>(other.epoch_ -
                                                           epoch_)
          .count();
  for (const TraceEvent& ev : other.events_) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      continue;
    }
    TraceEvent shifted = ev;
    shifted.start_ns += shift;
    events_.push_back(std::move(shifted));
  }
  dropped_ += other.dropped_;
}

void TraceSink::write_jsonl(std::ostream& os) const {
  {
    // Leading metadata line: anchors this file's ts=0 to wall-clock time so
    // sesp_trace_merge can align traces from different processes.
    JsonWriter w(os);
    w.begin_object();
    w.field("name", "trace.meta");
    w.field("cat", "meta");
    w.field("ph", "M");
    w.field("ts", 0.0);
    w.field("pid", static_cast<std::int64_t>(1));
    w.field("tid", static_cast<std::int64_t>(1));
    w.key("args");
    w.begin_object();
    w.field("epoch_unix_us", epoch_unix_us_);
    w.end_object();
    w.end_object();
    os << '\n';
  }
  for (const TraceEvent& ev : events_) {
    JsonWriter w(os);
    w.begin_object();
    w.field("name", ev.name);
    w.field("cat", ev.category);
    w.field("ph", ev.phase == TraceEvent::Phase::kComplete ? "X" : "i");
    w.field("ts", static_cast<double>(ev.start_ns) / 1000.0);  // microseconds
    if (ev.phase == TraceEvent::Phase::kComplete)
      w.field("dur", static_cast<double>(ev.duration_ns) / 1000.0);
    w.field("depth", static_cast<std::int64_t>(ev.depth));
    w.field("pid", static_cast<std::int64_t>(1));
    w.field("tid", static_cast<std::int64_t>(1));
    if (!ev.args_json.empty()) {
      w.key("args");
      // Fragments are caller-rendered; route them through the parser +
      // writer so a malformed fragment cannot poison the line — it travels
      // as an escaped string instead, and well-formed fragments re-render
      // byte-identically (parse → write fixpoint).
      if (const auto doc = parse_json(ev.args_json))
        write_json_value(w, *doc);
      else
        w.value(ev.args_json);
    }
    w.end_object();
    os << '\n';
  }
}

Span::Span(TraceSink* sink, std::string_view name, std::string_view category,
           std::string args_json)
    : sink_(sink) {
  if (!sink_) return;
  name_ = std::string(name);
  category_ = std::string(category);
  args_json_ = std::move(args_json);
  start_ns_ = sink_->now_ns();
  depth_ = sink_->depth_;
  ++sink_->depth_;
}

Span::~Span() {
  if (!sink_) return;
  --sink_->depth_;
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kComplete;
  ev.name = std::move(name_);
  ev.category = std::move(category_);
  ev.start_ns = start_ns_;
  ev.duration_ns = sink_->now_ns() - start_ns_;
  ev.depth = depth_;
  ev.args_json = std::move(args_json_);
  sink_->record(std::move(ev));
}

void Span::set_args(std::string args_json) {
  if (!sink_) return;
  args_json_ = std::move(args_json);
}

std::string args_object(std::initializer_list<std::string> fields) {
  std::string out = "{";
  bool first = true;
  for (const std::string& f : fields) {
    if (f.empty()) continue;
    if (!first) out += ',';
    first = false;
    out += f;
  }
  out += '}';
  return out;
}

std::string arg_int(std::string_view key, std::int64_t value) {
  return "\"" + json_escape(key) + "\":" + std::to_string(value);
}

std::string arg_str(std::string_view key, std::string_view value) {
  return "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
}

}  // namespace sesp::obs
