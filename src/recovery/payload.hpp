#pragma once

// Slot-payload codec for the run journal (docs/robustness.md): an ordered
// list of key=value lines. The format is the narrowest thing that satisfies
// the resume contract — encoding is deterministic (insertion order, one
// canonical escape), so a slot result serialized on one run and decoded on
// a resumed run reproduces the exact bytes a fresh computation would have
// produced. Values may contain anything; '\\', '\n' and '\r' travel
// escaped. Keys are internal identifiers ([A-Za-z0-9._-], enforced).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sesp::recovery {

class PayloadWriter {
 public:
  // Appends one field; keys restricted to [A-Za-z0-9._-] (terminates on
  // violation — journal schema bugs must not produce unreadable records).
  void put(std::string_view key, std::string_view value);
  void put_int(std::string_view key, std::int64_t value);
  void put_uint(std::string_view key, std::uint64_t value);
  void put_bool(std::string_view key, bool value);

  const std::string& str() const noexcept { return text_; }

 private:
  std::string text_;
};

class PayloadReader {
 public:
  // Parses the writer's output; unescapable input flips ok() off but the
  // well-formed prefix stays readable (defense in depth — checksummed
  // journal records should never get here malformed).
  explicit PayloadReader(std::string_view payload);

  bool ok() const noexcept { return ok_; }
  bool has(std::string_view key) const noexcept;
  // First value for `key`, or `fallback` when absent.
  std::string get(std::string_view key,
                  std::string_view fallback = {}) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  std::uint64_t get_uint(std::string_view key, std::uint64_t fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

 private:
  bool ok_ = true;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace sesp::recovery
