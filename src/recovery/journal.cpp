#include "recovery/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sesp::recovery {

namespace {

constexpr char kSchema[] = "sesp-journal/1";

bool fsync_enabled_from_env() {
  const char* env = std::getenv("SESP_JOURNAL_FSYNC");
  return !(env && env[0] == '0' && env[1] == '\0');
}

// Writes the whole buffer, riding out short writes and EINTR.
bool write_all(int fd, const std::string& text) {
  std::size_t done = 0;
  while (done < text.size()) {
    const ssize_t n = ::write(fd, text.data() + done, text.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::string frame_record(const std::string& stage, std::uint64_t slot,
                         const std::string& payload) {
  std::ostringstream os;
  os << "S " << stage << ' ' << slot << ' ' << payload.size() << ' '
     << fnv1a_hex(fnv1a(payload)) << '\n'
     << payload << "\n.\n";
  return os.str();
}

// Checksum input for a lease line: every field, order-fixed, '|'-joined —
// the same shape the S-frame uses for its payload.
std::string lease_checksum(const LeaseRecord& lease) {
  std::ostringstream os;
  os << lease.worker << '|' << lease.stage << '|' << lease.lo << '|'
     << lease.len << '|' << lease.deadline_ms << '|' << lease.event;
  return fnv1a_hex(fnv1a(os.str()));
}

std::string frame_lease(const LeaseRecord& lease) {
  std::ostringstream os;
  os << "L " << lease.worker << ' ' << lease.stage << ' ' << lease.lo << ' '
     << lease.len << ' ' << lease.deadline_ms << ' ' << lease.event << ' '
     << lease_checksum(lease) << '\n';
  return os.str();
}

bool parse_hex16(const std::string& hex, std::uint64_t* out) {
  return util::parse_fnv1a_hex(hex, out);
}

}  // namespace

bool parse_journal_header(std::string_view line, std::string* tool,
                          std::uint64_t* config_digest, std::string* error) {
  std::istringstream hs{std::string(line)};
  std::string schema, tool_kv, config_kv;
  hs >> schema >> tool_kv >> config_kv;
  if (schema != kSchema || tool_kv.rfind("tool=", 0) != 0 ||
      config_kv.rfind("config=", 0) != 0) {
    if (error) *error = std::string("bad journal header (want ") + kSchema + ")";
    return false;
  }
  std::uint64_t digest = 0;
  if (!parse_hex16(config_kv.substr(7), &digest)) {
    if (error) *error = "bad config digest in header";
    return false;
  }
  if (tool) *tool = tool_kv.substr(5);
  if (config_digest) *config_digest = digest;
  return true;
}

std::size_t parse_journal_frames(std::string_view text, std::size_t at,
                                 std::vector<JournalRecord>* records,
                                 std::vector<LeaseRecord>* leases,
                                 bool* torn) {
  if (torn) *torn = false;
  while (at < text.size()) {
    const std::size_t line_end = text.find('\n', at);
    if (line_end == std::string_view::npos) break;  // incomplete frame line
    std::istringstream fs{std::string(text.substr(at, line_end - at))};
    std::string marker;
    fs >> marker;
    if (marker == "S") {
      std::string stage, checksum;
      std::uint64_t slot = 0;
      std::size_t size = 0;
      fs >> stage >> slot >> size >> checksum;
      if (stage.empty() || !fs || checksum.size() != 16) break;
      const std::size_t payload_at = line_end + 1;
      // Frame tail: payload bytes, '\n', ".\n".
      if (payload_at + size + 3 > text.size()) break;
      const std::string payload{text.substr(payload_at, size)};
      if (text.compare(payload_at + size, 3, "\n.\n") != 0 ||
          fnv1a_hex(fnv1a(payload)) != checksum) {
        break;
      }
      if (records) records->push_back({stage, slot, payload});
      at = payload_at + size + 3;
    } else if (marker == "L") {
      LeaseRecord lease;
      std::string checksum;
      fs >> lease.worker >> lease.stage >> lease.lo >> lease.len >>
          lease.deadline_ms >> lease.event >> checksum;
      if (!fs || lease.stage.empty() || lease.event.empty() ||
          lease_checksum(lease) != checksum) {
        break;
      }
      if (leases) leases->push_back(std::move(lease));
      at = line_end + 1;
    } else {
      break;  // unknown marker — untrusted from here on
    }
  }
  if (torn && at < text.size()) *torn = true;
  return at;
}

JournalSnapshot read_journal_snapshot(const std::string& path) {
  JournalSnapshot snap;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    snap.error = "cannot open " + path;
    return snap;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::size_t at = text.find('\n');
  if (at == std::string::npos) {
    snap.error = path + ": missing journal header";
    return snap;
  }
  std::string header_error;
  if (!parse_journal_header(std::string_view(text).substr(0, at), &snap.tool,
                            &snap.config_digest, &header_error)) {
    snap.error = path + ": " + header_error;
    return snap;
  }
  ++at;

  bool torn = false;
  parse_journal_frames(text, at, &snap.records, &snap.leases, &torn);
  snap.dropped = torn ? 1 : 0;
  snap.ok = true;
  return snap;
}

std::unique_ptr<RunJournal> RunJournal::create(const std::string& path,
                                               const std::string& tool,
                                               std::uint64_t config_digest,
                                               std::string* error) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) {
    if (error) *error = "cannot create " + path;
    return nullptr;
  }
  std::unique_ptr<RunJournal> j(new RunJournal);
  j->path_ = path;
  j->tool_ = tool;
  j->config_digest_ = config_digest;
  j->fd_ = fd;
  j->fsync_ = fsync_enabled_from_env();
  std::ostringstream header;
  header << kSchema << " tool=" << tool
         << " config=" << fnv1a_hex(config_digest) << '\n';
  if (!write_all(fd, header.str())) {
    if (error) *error = "cannot write journal header to " + path;
    return nullptr;
  }
  if (j->fsync_) ::fsync(fd);
  return j;
}

std::unique_ptr<RunJournal> RunJournal::open_resume(const std::string& path,
                                                    std::string* error) {
  JournalSnapshot snap = read_journal_snapshot(path);
  if (!snap.ok) {
    if (error) *error = snap.error;
    return nullptr;
  }

  std::unique_ptr<RunJournal> j(new RunJournal);
  j->path_ = path;
  j->fsync_ = fsync_enabled_from_env();
  j->tool_ = std::move(snap.tool);
  j->config_digest_ = snap.config_digest;
  j->dropped_ = snap.dropped;
  for (JournalRecord& r : snap.records)
    j->completed_[{std::move(r.stage), r.slot}] = std::move(r.payload);
  j->leases_ = std::move(snap.leases);

  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    if (error) *error = "cannot reopen " + path + " for appending";
    return nullptr;
  }
  j->fd_ = fd;
  return j;
}

RunJournal::~RunJournal() {
  if (fd_ >= 0) ::close(fd_);
}

bool RunJournal::append(const std::string& stage, std::uint64_t slot,
                        const std::string& payload) {
  const std::string frame = frame_record(stage, slot, payload);
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return false;
  if (!write_all(fd_, frame)) return false;
  if (fsync_) ::fsync(fd_);
  completed_[{stage, slot}] = payload;
  return true;
}

bool RunJournal::append_lease(const LeaseRecord& lease) {
  const std::string frame = frame_lease(lease);
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return false;
  if (!write_all(fd_, frame)) return false;
  if (fsync_) ::fsync(fd_);
  leases_.push_back(lease);
  return true;
}

const std::string* RunJournal::lookup(const std::string& stage,
                                      std::uint64_t slot) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = completed_.find({stage, slot});
  return it == completed_.end() ? nullptr : &it->second;
}

std::int64_t RunJournal::records() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::int64_t>(completed_.size());
}

std::vector<LeaseRecord> RunJournal::leases() const {
  std::lock_guard<std::mutex> lk(mu_);
  return leases_;
}

void RunJournal::sync() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ >= 0) ::fsync(fd_);
}

}  // namespace sesp::recovery
