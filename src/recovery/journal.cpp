#include "recovery/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sesp::recovery {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr char kSchema[] = "sesp-journal/1";

bool fsync_enabled_from_env() {
  const char* env = std::getenv("SESP_JOURNAL_FSYNC");
  return !(env && env[0] == '0' && env[1] == '\0');
}

// Writes the whole buffer, riding out short writes and EINTR.
bool write_all(int fd, const std::string& text) {
  std::size_t done = 0;
  while (done < text.size()) {
    const ssize_t n = ::write(fd, text.data() + done, text.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::string frame_record(const std::string& stage, std::uint64_t slot,
                         const std::string& payload) {
  std::ostringstream os;
  os << "S " << stage << ' ' << slot << ' ' << payload.size() << ' '
     << fnv1a_hex(fnv1a(payload)) << '\n'
     << payload << "\n.\n";
  return os.str();
}

}  // namespace

std::uint64_t fnv1a(std::string_view text, std::uint64_t h) noexcept {
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string fnv1a_hex(std::uint64_t h) {
  static const char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xF];
    h >>= 4;
  }
  return out;
}

std::unique_ptr<RunJournal> RunJournal::create(const std::string& path,
                                               const std::string& tool,
                                               std::uint64_t config_digest,
                                               std::string* error) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) {
    if (error) *error = "cannot create " + path;
    return nullptr;
  }
  std::unique_ptr<RunJournal> j(new RunJournal);
  j->path_ = path;
  j->tool_ = tool;
  j->config_digest_ = config_digest;
  j->fd_ = fd;
  j->fsync_ = fsync_enabled_from_env();
  std::ostringstream header;
  header << kSchema << " tool=" << tool
         << " config=" << fnv1a_hex(config_digest) << '\n';
  if (!write_all(fd, header.str())) {
    if (error) *error = "cannot write journal header to " + path;
    return nullptr;
  }
  if (j->fsync_) ::fsync(fd);
  return j;
}

std::unique_ptr<RunJournal> RunJournal::open_resume(const std::string& path,
                                                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return nullptr;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::unique_ptr<RunJournal> j(new RunJournal);
  j->path_ = path;
  j->fsync_ = fsync_enabled_from_env();

  // Header line.
  std::size_t at = text.find('\n');
  if (at == std::string::npos) {
    if (error) *error = path + ": missing journal header";
    return nullptr;
  }
  {
    std::istringstream hs(text.substr(0, at));
    std::string schema, tool_kv, config_kv;
    hs >> schema >> tool_kv >> config_kv;
    if (schema != kSchema || tool_kv.rfind("tool=", 0) != 0 ||
        config_kv.rfind("config=", 0) != 0) {
      if (error) *error = path + ": bad journal header (want " + kSchema + ")";
      return nullptr;
    }
    j->tool_ = tool_kv.substr(5);
    const std::string hex = config_kv.substr(7);
    std::uint64_t digest = 0;
    for (const char c : hex) {
      digest <<= 4;
      if (c >= '0' && c <= '9') digest |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        digest |= static_cast<std::uint64_t>(c - 'a' + 10);
      else {
        if (error) *error = path + ": bad config digest in header";
        return nullptr;
      }
    }
    j->config_digest_ = digest;
  }
  ++at;

  // Record frames: keep every record whose frame parses and whose checksum
  // verifies; stop at the first inconsistency (a torn tail from a crash
  // mid-append — everything after it is untrusted).
  while (at < text.size()) {
    const std::size_t line_end = text.find('\n', at);
    if (line_end == std::string::npos) {
      ++j->dropped_;
      break;
    }
    std::istringstream fs(text.substr(at, line_end - at));
    std::string marker, stage;
    std::uint64_t slot = 0;
    std::size_t size = 0;
    std::string checksum;
    fs >> marker >> stage >> slot >> size >> checksum;
    if (marker != "S" || stage.empty() || !fs || checksum.size() != 16) {
      ++j->dropped_;
      break;
    }
    const std::size_t payload_at = line_end + 1;
    // Frame tail: payload bytes, '\n', ".\n".
    if (payload_at + size + 3 > text.size()) {
      ++j->dropped_;
      break;
    }
    const std::string payload = text.substr(payload_at, size);
    if (text.compare(payload_at + size, 3, "\n.\n") != 0 ||
        fnv1a_hex(fnv1a(payload)) != checksum) {
      ++j->dropped_;
      break;
    }
    j->completed_[{stage, slot}] = payload;
    at = payload_at + size + 3;
  }

  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    if (error) *error = "cannot reopen " + path + " for appending";
    return nullptr;
  }
  j->fd_ = fd;
  return j;
}

RunJournal::~RunJournal() {
  if (fd_ >= 0) ::close(fd_);
}

bool RunJournal::append(const std::string& stage, std::uint64_t slot,
                        const std::string& payload) {
  const std::string frame = frame_record(stage, slot, payload);
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return false;
  if (!write_all(fd_, frame)) return false;
  if (fsync_) ::fsync(fd_);
  completed_[{stage, slot}] = payload;
  return true;
}

const std::string* RunJournal::lookup(const std::string& stage,
                                      std::uint64_t slot) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = completed_.find({stage, slot});
  return it == completed_.end() ? nullptr : &it->second;
}

std::int64_t RunJournal::records() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<std::int64_t>(completed_.size());
}

}  // namespace sesp::recovery
