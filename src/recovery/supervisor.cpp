#include "recovery/supervisor.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include <sstream>

#include "exec/thread_pool.hpp"
#include "obs/observer.hpp"
#include "recovery/payload.hpp"
#include "shard/shard.hpp"

namespace sesp::recovery {

namespace {

// Async-signal-safe stop flag shared by the handlers and interrupted();
// the handler may run on any thread at any point, so it touches nothing
// but this.
volatile std::sig_atomic_t g_signal_stop = 0;

void signal_handler(int) { g_signal_stop = 1; }

Supervisor* g_current = nullptr;

std::int64_t stop_after_from_env() {
  const char* env = std::getenv("SESP_STOP_AFTER");
  if (!env || !*env) return -1;
  char* end = nullptr;
  const long long n = std::strtoll(env, &end, 10);
  return (end && *end == '\0' && n >= 0) ? n : -1;
}

constexpr char kFailureMarker[] = "__task_failure";

}  // namespace

std::string TaskFailure::to_string() const {
  const char* what = kind == Kind::kDeadline ? "deadline" : "exception";
  return std::string("task failure (") + what + ", " +
         std::to_string(attempts) +
         (attempts == 1 ? " attempt): " : " attempts): ") + detail;
}

std::string encode_task_failure(const TaskFailure& failure) {
  PayloadWriter w;
  w.put_bool(kFailureMarker, true);
  w.put(
      "kind",
      failure.kind == TaskFailure::Kind::kDeadline ? "deadline" : "exception");
  w.put_int("attempts", failure.attempts);
  w.put("detail", failure.detail);
  return w.str();
}

std::optional<TaskFailure> decode_task_failure(std::string_view payload) {
  // Cheap reject before the full parse: ordinary payloads never start with
  // the reserved marker key.
  if (payload.rfind(kFailureMarker, 0) != 0) return std::nullopt;
  const PayloadReader r(payload);
  if (!r.get_bool(kFailureMarker, false)) return std::nullopt;
  TaskFailure f;
  f.kind = r.get("kind") == "deadline" ? TaskFailure::Kind::kDeadline
                                       : TaskFailure::Kind::kException;
  f.attempts = static_cast<std::int32_t>(r.get_int("attempts", 1));
  f.detail = r.get("detail");
  return f;
}

Supervisor::Supervisor(std::unique_ptr<RunJournal> journal, TaskPolicy policy)
    : journal_(std::move(journal)), policy_(policy) {
  stop_after_ = stop_after_from_env();
}

Supervisor::~Supervisor() {
  if (handlers_installed_) {
    std::signal(SIGINT, saved_sigint_);
    std::signal(SIGTERM, saved_sigterm_);
  }
  if (g_current == this) g_current = nullptr;
}

Supervisor* Supervisor::install(Supervisor* supervisor) noexcept {
  Supervisor* previous = g_current;
  g_current = supervisor;
  return previous;
}

Supervisor* Supervisor::current() noexcept { return g_current; }

SupervisorStats Supervisor::stats() const {
  SupervisorStats s;
  s.slots_replayed = slots_replayed_.load();
  s.slots_executed = slots_executed_.load();
  s.slots_skipped = slots_skipped_.load();
  s.retries = retries_.load();
  s.deadline_exceeded = deadline_exceeded_.load();
  s.failures = failures_.load();
  return s;
}

void Supervisor::install_signal_handlers() {
  if (handlers_installed_) return;
  g_signal_stop = 0;
  saved_sigint_ = std::signal(SIGINT, signal_handler);
  saved_sigterm_ = std::signal(SIGTERM, signal_handler);
  handlers_installed_ = true;
}

bool Supervisor::interrupted() const noexcept {
  return stop_.load() || g_signal_stop != 0;
}

std::string Supervisor::unique_stage(const std::string& name) {
  // Journal frames are space-delimited; stage identifiers come from the
  // drivers and never contain whitespace, but normalize defensively.
  std::string clean = name;
  for (char& c : clean)
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  const int use = ++stage_uses_[clean];
  return use == 1 ? clean : clean + "#" + std::to_string(use);
}

void Supervisor::note_append() {
  const std::int64_t n = appends_.fetch_add(1) + 1;
  if (stop_after_ >= 0 && n >= stop_after_) request_stop();
}

std::int64_t retry_backoff_ms(const TaskPolicy& policy,
                              std::uint64_t config_digest, std::size_t slot,
                              std::int32_t attempt) {
  if (attempt <= 1) return 0;
  std::int64_t base = policy.backoff_ms;
  for (std::int32_t i = 2; i < attempt; ++i) base *= 2;
  if (base > 1000) base = 1000;
  if (base <= 0) return 0;
  std::ostringstream os;
  os << fnv1a_hex(config_digest) << '|' << slot << '|' << attempt;
  const std::uint64_t jitter =
      fnv1a(os.str()) % (static_cast<std::uint64_t>(base) / 4 + 1);
  return base + static_cast<std::int64_t>(jitter);
}

std::string Supervisor::run_attempts(
    std::size_t slot,
    const std::function<std::string(std::size_t)>& compute) {
  const std::int32_t max_attempts =
      1 + (policy_.max_retries > 0 ? policy_.max_retries : 0);
  TaskFailure failure;
  failure.attempts = max_attempts;
  for (std::int32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      retries_.fetch_add(1);
      const std::int64_t backoff = retry_backoff_ms(
          policy_, journal_ ? journal_->config_digest() : 0, slot, attempt);
      if (backoff > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    const auto start = std::chrono::steady_clock::now();
    try {
      std::string payload = compute(slot);
      if (policy_.deadline_seconds > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        if (elapsed > policy_.deadline_seconds) {
          deadline_exceeded_.fetch_add(1);
          failure.kind = TaskFailure::Kind::kDeadline;
          failure.detail = "slot " + std::to_string(slot) + " took " +
                           std::to_string(elapsed) + "s (deadline " +
                           std::to_string(policy_.deadline_seconds) + "s)";
          continue;
        }
      }
      return payload;
    } catch (const std::exception& e) {
      failure.kind = TaskFailure::Kind::kException;
      failure.detail = e.what();
    } catch (...) {
      failure.kind = TaskFailure::Kind::kException;
      failure.detail = "non-standard exception";
    }
  }
  failures_.fetch_add(1);
  return encode_task_failure(failure);
}

void Supervisor::journal_payload(const std::string& stage, std::size_t slot,
                                 const std::string& payload) {
  if (!journal_ || journal_broken_) return;
  if (journal_->append(stage, slot, payload)) {
    note_append();
  } else {
    journal_broken_ = true;
    std::fprintf(stderr,
                 "warning: journal append failed at %s; "
                 "continuing without checkpoints\n",
                 journal_->path().c_str());
  }
}

void Supervisor::for_each_slot(
    const std::string& stage_name, std::size_t count,
    const std::function<std::string(std::size_t)>& compute,
    const std::function<void(std::size_t, const std::string&)>& apply,
    int jobs) {
  const std::string stage = unique_stage(stage_name);
  if (shard_) {
    shard_for_each_slot(stage, count, compute, apply, jobs);
    return;
  }

  // Replay phase (serial): journaled slots recover their stored payloads.
  // Nothing is applied yet — application happens in one pass, in global
  // slot order, after the compute barrier, so a resumed run folds slots in
  // exactly the order an uninterrupted run does even when journaled and
  // freshly-computed slots interleave.
  std::vector<std::optional<std::string>> payloads(count);
  std::vector<std::size_t> pending;
  std::int64_t replayed = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string* stored =
        journal_ ? journal_->lookup(stage, i) : nullptr;
    if (stored) {
      payloads[i].emplace(*stored);
      ++replayed;
    } else {
      pending.push_back(i);
    }
  }
  slots_replayed_.fetch_add(replayed);

  // Compute phase: pending slots fan out over the pool under the task
  // policy; each completed payload is journaled before the barrier so an
  // interrupt (or crash) after this point never loses it.
  const std::int64_t retries_before = retries_.load();
  const std::int64_t deadline_before = deadline_exceeded_.load();
  const std::int64_t failures_before = failures_.load();
  exec::parallel_for_each(
      pending.size(),
      [&](std::size_t k) {
        const std::size_t slot = pending[k];
        if (interrupted()) return;
        std::string payload = run_attempts(slot, compute);
        journal_payload(stage, slot, payload);
        payloads[slot].emplace(std::move(payload));
      },
      jobs);

  // Apply phase (serial, global slot order): decoded state lands
  // identically for every job count and every interrupt/resume history.
  std::int64_t executed = 0, skipped = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (payloads[i]) apply(i, *payloads[i]);
  }
  for (const std::size_t slot : pending) {
    if (payloads[slot]) {
      ++executed;
    } else {
      ++skipped;
    }
  }
  slots_executed_.fetch_add(executed);
  slots_skipped_.fetch_add(skipped);

  // Observability from the driving thread only (the shard rules of
  // docs/observability.md): per-stage counters plus a journal.stage
  // instant; journal.interrupt marks a drained stop.
  obs::Observer* const o = obs::default_observer();
  if (o && o->metrics) {
    o->metrics->counter("recovery.slots.replayed").inc(replayed);
    o->metrics->counter("recovery.slots.executed").inc(executed);
    o->metrics->counter("recovery.slots.skipped").inc(skipped);
    o->metrics->counter("recovery.task.retries")
        .inc(retries_.load() - retries_before);
    o->metrics->counter("recovery.task.deadline_exceeded")
        .inc(deadline_exceeded_.load() - deadline_before);
    o->metrics->counter("recovery.task.failures")
        .inc(failures_.load() - failures_before);
  }
  if (o && o->trace) {
    o->trace->instant("journal.stage", "recovery",
                      obs::args_object(
                          {obs::arg_str("stage", stage),
                           obs::arg_int("replayed", replayed),
                           obs::arg_int("executed", executed),
                           obs::arg_int("skipped", skipped)}));
    if (interrupted())
      o->trace->instant("journal.interrupt", "recovery",
                        obs::args_object({obs::arg_str("stage", stage)}));
  }
}

void Supervisor::shard_for_each_slot(
    const std::string& stage, std::size_t count,
    const std::function<std::string(std::size_t)>& compute,
    const std::function<void(std::size_t, const std::string&)>& apply,
    int jobs) {
  // Replay phase: our own journal first (a restarted worker resumes its
  // completed slots for free); peers' checkpoints arrive via gather below.
  std::vector<std::optional<std::string>> payloads(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string* stored =
        journal_ ? journal_->lookup(stage, i) : nullptr;
    if (stored) payloads[i].emplace(*stored);
  }

  const auto missing_count = [&payloads] {
    std::size_t m = 0;
    for (const auto& p : payloads)
      if (!p) ++m;
    return m;
  };

  const std::uint64_t chunk = shard::shard_chunk(count);
  const std::int64_t retries_before = retries_.load();
  const std::int64_t deadline_before = deadline_exceeded_.load();
  const std::int64_t failures_before = failures_.load();
  const std::int64_t claimed_before = shard_->leases_claimed();
  const std::int64_t stolen_before = shard_->leases_stolen();
  const std::int64_t expired_before = shard_->leases_expired_seen();
  obs::Observer* const o = obs::default_observer();

  // Worker loop: lease a range with missing slots (stealing expired
  // leases), compute its pending slots on the pool, journal each, mark the
  // range done; when nothing is claimable, poll until the live leaseholder
  // either finishes (its records appear in gather) or expires (we steal).
  // Every worker exits this loop with the full payload set, so every
  // worker applies — and prints — the complete canonical report.
  std::int64_t executed = 0;
  while (!interrupted() && missing_count() > 0) {
    {
      obs::ProfileScope gather_scope(o ? o->profiler : nullptr,
                                     obs::ProfilePhase::kShardGather);
      shard_->gather_peers(stage, &payloads);
    }
    if (missing_count() == 0) break;
    std::size_t live_leases = 0;
    const auto range = shard_->acquire_range(stage, count, chunk, payloads,
                                             journal_.get(), &live_leases);
    if (!range) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(shard_->options().poll_ms));
      continue;
    }
    if (o && o->trace)
      o->trace->instant(
          "shard.lease", "shard",
          obs::args_object(
              {obs::arg_str("stage", stage),
               obs::arg_int("lo", static_cast<std::int64_t>(range->lo)),
               obs::arg_int("len",
                            static_cast<std::int64_t>(range->hi - range->lo)),
               obs::arg_int("stolen", range->stolen ? 1 : 0)}));

    std::vector<std::size_t> pending;
    for (std::uint64_t slot = range->lo; slot < range->hi; ++slot)
      if (!payloads[slot]) pending.push_back(slot);

    shard_->start_heartbeat(*range);
    exec::parallel_for_each(
        pending.size(),
        [&](std::size_t k) {
          const std::size_t slot = pending[k];
          if (interrupted()) return;
          std::string payload = run_attempts(slot, compute);
          journal_payload(stage, slot, payload);
          payloads[slot].emplace(std::move(payload));
        },
        jobs);
    shard_->stop_heartbeat();
    if (o && o->trace) {
      // The heartbeat thread only records wall-clock stamps (the sink is
      // single-writer); flush them as instants now that it has joined.
      for (const std::int64_t renew_ms : shard_->take_renewals())
        o->trace->instant_at(
            o->trace->ns_for_unix_ms(renew_ms), "shard.lease.renew", "shard",
            obs::args_object(
                {obs::arg_str("stage", stage),
                 obs::arg_int("lo", static_cast<std::int64_t>(range->lo))}));
    }

    bool complete = true;
    for (const std::size_t slot : pending) {
      if (payloads[slot]) ++executed;
      else complete = false;
    }
    if (complete && !interrupted()) {
      shard_->complete_range(stage, *range, journal_.get());
      if (o && o->trace)
        o->trace->instant(
            "shard.range.done", "shard",
            obs::args_object(
                {obs::arg_str("stage", stage),
                 obs::arg_int("lo", static_cast<std::int64_t>(range->lo)),
                 obs::arg_int(
                     "len", static_cast<std::int64_t>(range->hi - range->lo))}));
    }
  }

  // Apply phase: identical to the plain path — serial, global slot order,
  // decoded payload bytes only.
  for (std::size_t i = 0; i < count; ++i)
    if (payloads[i]) apply(i, *payloads[i]);

  const std::int64_t skipped =
      static_cast<std::int64_t>(missing_count());
  const std::int64_t replayed =
      static_cast<std::int64_t>(count) - executed - skipped;
  slots_replayed_.fetch_add(replayed);
  slots_executed_.fetch_add(executed);
  slots_skipped_.fetch_add(skipped);

  if (o && o->metrics) {
    o->metrics->counter("recovery.slots.replayed").inc(replayed);
    o->metrics->counter("recovery.slots.executed").inc(executed);
    o->metrics->counter("recovery.slots.skipped").inc(skipped);
    o->metrics->counter("recovery.task.retries")
        .inc(retries_.load() - retries_before);
    o->metrics->counter("recovery.task.deadline_exceeded")
        .inc(deadline_exceeded_.load() - deadline_before);
    o->metrics->counter("recovery.task.failures")
        .inc(failures_.load() - failures_before);
    o->metrics->counter("shard.leases.claimed")
        .inc(shard_->leases_claimed() - claimed_before);
    o->metrics->counter("shard.leases.stolen")
        .inc(shard_->leases_stolen() - stolen_before);
    o->metrics->counter("shard.leases.expired")
        .inc(shard_->leases_expired_seen() - expired_before);
  }
  if (o && o->trace) {
    o->trace->instant("journal.stage", "recovery",
                      obs::args_object(
                          {obs::arg_str("stage", stage),
                           obs::arg_int("replayed", replayed),
                           obs::arg_int("executed", executed),
                           obs::arg_int("skipped", skipped)}));
    if (interrupted())
      o->trace->instant("journal.interrupt", "recovery",
                        obs::args_object({obs::arg_str("stage", stage)}));
  }
}

Supervisor* current_for_sweep() noexcept {
  return exec::inside_pool_worker() ? nullptr : g_current;
}

void supervised_sweep(
    const std::string& stage_name, std::size_t count,
    const std::function<std::string(std::size_t)>& compute,
    const std::function<void(std::size_t, const std::string&)>& apply,
    int jobs) {
  if (Supervisor* sup = current_for_sweep()) {
    sup->for_each_slot(stage_name, count, compute, apply, jobs);
    return;
  }
  std::vector<std::string> payloads(count);
  exec::parallel_for_each(
      count, [&](std::size_t i) { payloads[i] = compute(i); }, jobs);
  for (std::size_t i = 0; i < count; ++i) apply(i, payloads[i]);
}

bool run_interrupted() noexcept {
  return g_current != nullptr && g_current->interrupted();
}

}  // namespace sesp::recovery
