#pragma once

// Supervised execution for the long-running sweep drivers
// (docs/robustness.md). A Supervisor wraps the slot fan-out of a sweep —
// worst-case families, degradation grids, chaos sweeps, the exhaustive
// enumerator's subtree walk, conformance campaigns — with three services:
//
//   * Checkpoint/resume. Each completed slot's result is encoded to a
//     payload string and appended to the RunJournal; on resume, journaled
//     slots replay by decoding the stored payload and only pending slots
//     re-execute (with their original (seed, slot) derivation, at any job
//     count). Both the fresh and the replayed path apply the *decoded*
//     payload, so the final report is a pure function of the payload bytes
//     — the mechanism behind the byte-identical-resume contract.
//
//   * Task isolation. A slot that throws is retried with exponential
//     backoff; a slot whose attempt overruns the (cooperative) wall-clock
//     deadline is likewise retried. When every attempt fails the slot's
//     payload becomes an encoded TaskFailure — a structured, SimError-style
//     outcome the driver folds into its report — never a process abort.
//
//   * Interrupt draining. install_signal_handlers() routes SIGINT/SIGTERM
//     into an async-signal-safe stop flag; pending slots are skipped, the
//     pool drains, completed slots are already durable in the journal, and
//     the tool exits with kExitInterrupted (75, EX_TEMPFAIL) after printing
//     a resume hint.
//
// Deadlines are enforced cooperatively (checked when the attempt returns):
// slot functions are pure compute with simulator-level step/time watchdogs
// of their own, so a true hang is already bounded below; killing threads
// would forfeit determinism. Deadline/retry verdicts land in the journal,
// keeping resumed and uninterrupted runs byte-identical even when they
// fire.
//
// Env knobs: SESP_STOP_AFTER=N requests a stop after N journal appends —
// the deterministic interruption point the kill-and-resume tests and the CI
// smoke job use (a fault-injection hook for the recovery layer itself).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "recovery/journal.hpp"

namespace sesp::shard {
class ShardContext;
}  // namespace sesp::shard

namespace sesp::recovery {

// EX_TEMPFAIL: the run was interrupted but is resumable from the journal.
inline constexpr int kExitInterrupted = 75;

struct TaskPolicy {
  // 0 = no deadline. Checked when an attempt completes (cooperative).
  double deadline_seconds = 0.0;
  // Extra attempts after the first; 1 retry by default.
  std::int32_t max_retries = 1;
  // First backoff; doubles per retry, capped at 1s.
  std::int64_t backoff_ms = 25;
};

// Structured outcome of a slot whose every attempt failed. Travels through
// the journal as a reserved payload, so a resumed run folds the identical
// failure without re-running the task.
struct TaskFailure {
  enum class Kind : std::uint8_t { kException, kDeadline };
  Kind kind = Kind::kException;
  std::int32_t attempts = 0;
  std::string detail;

  // "task failure (exception, 2 attempts): ..." — the diagnostic string
  // drivers fold into their reports.
  std::string to_string() const;
};

std::string encode_task_failure(const TaskFailure& failure);
// Decodes a reserved task-failure payload; nullopt for ordinary payloads.
std::optional<TaskFailure> decode_task_failure(std::string_view payload);

// The delay before retry `attempt` (attempt 2 = first retry) of `slot`:
// policy.backoff_ms doubling per retry, capped at 1s, plus up to 25%
// jitter seeded deterministically from (config digest, slot, attempt) —
// never from the clock — so a retried slot backs off identically across
// resumes and shard workers while distinct slots still decorrelate.
std::int64_t retry_backoff_ms(const TaskPolicy& policy,
                              std::uint64_t config_digest, std::size_t slot,
                              std::int32_t attempt);

struct SupervisorStats {
  std::int64_t slots_replayed = 0;
  std::int64_t slots_executed = 0;
  std::int64_t slots_skipped = 0;  // pending when the stop flag rose
  std::int64_t retries = 0;
  std::int64_t deadline_exceeded = 0;
  std::int64_t failures = 0;  // slots that became TaskFailure payloads
};

class Supervisor {
 public:
  // The journal may be null: deadline/retry isolation and interrupt
  // draining still apply, results just aren't durable.
  explicit Supervisor(std::unique_ptr<RunJournal> journal,
                      TaskPolicy policy = {});
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Process-wide installation (the sweep drivers have no supervisor
  // parameter; they consult current_for_sweep()). Install/uninstall from
  // the main thread only; returns the previous supervisor.
  static Supervisor* install(Supervisor* supervisor) noexcept;
  static Supervisor* current() noexcept;

  RunJournal* journal() noexcept { return journal_.get(); }
  const TaskPolicy& policy() const noexcept { return policy_; }
  SupervisorStats stats() const;

  // Routes SIGINT/SIGTERM into the stop flag for the supervisor's
  // lifetime; previous handlers are restored by the destructor.
  void install_signal_handlers();
  void request_stop() noexcept { stop_.store(true); }
  bool interrupted() const noexcept;

  // Deterministic interruption for tests: stop after `n` journal appends
  // (the SESP_STOP_AFTER env knob, read at construction; < 0 disables).
  void set_stop_after(std::int64_t n) noexcept { stop_after_ = n; }

  // Sharded mode (docs/robustness.md "Sharded execution"): when a
  // ShardContext is attached, for_each_slot() leases slot ranges through
  // the shared shard directory, gathers peer checkpoints between rounds,
  // and steals expired ranges, instead of computing every pending slot
  // itself. The context is borrowed, not owned; it must outlive the
  // supervisor's sweeps.
  void set_shard(shard::ShardContext* shard) noexcept { shard_ = shard; }
  shard::ShardContext* shard() const noexcept { return shard_; }

  // The supervised counterpart of exec::parallel_for_each. For every slot
  // in [0, count): journaled slots replay via apply(slot, payload); pending
  // slots run compute(slot) under the retry/deadline policy on the pool,
  // append the payload to the journal, and then apply it serially in slot
  // order after the barrier. apply() always receives the encoded payload —
  // fresh or replayed, the driver decodes the same bytes. Slots skipped by
  // an interrupt get no apply; the caller checks interrupted() and treats
  // the fold as partial.
  void for_each_slot(
      const std::string& stage_name, std::size_t count,
      const std::function<std::string(std::size_t)>& compute,
      const std::function<void(std::size_t, const std::string&)>& apply,
      int jobs = 0);

 private:
  std::string unique_stage(const std::string& name);
  std::string run_attempts(
      std::size_t slot,
      const std::function<std::string(std::size_t)>& compute);
  void note_append();
  // The leased-range worker loop behind for_each_slot() in shard mode;
  // `stage` is already uniqued.
  void shard_for_each_slot(
      const std::string& stage, std::size_t count,
      const std::function<std::string(std::size_t)>& compute,
      const std::function<void(std::size_t, const std::string&)>& apply,
      int jobs);
  // Journals one computed payload, degrading to journal-less execution on
  // a write error (shared by the plain and shard compute phases).
  void journal_payload(const std::string& stage, std::size_t slot,
                       const std::string& payload);

  std::unique_ptr<RunJournal> journal_;
  TaskPolicy policy_;
  shard::ShardContext* shard_ = nullptr;
  std::atomic<bool> stop_{false};
  std::int64_t stop_after_ = -1;
  std::atomic<std::int64_t> appends_{0};
  bool journal_broken_ = false;

  bool handlers_installed_ = false;
  void (*saved_sigint_)(int) = nullptr;
  void (*saved_sigterm_)(int) = nullptr;

  // Stage-name dedup: two sweeps of the same kind in one process get
  // distinct journal stages ("mpm_worst_case", "mpm_worst_case#2", ...) in
  // call order, which is deterministic because sweeps start from the
  // driving thread.
  std::map<std::string, int> stage_uses_;

  std::atomic<std::int64_t> slots_replayed_{0};
  std::atomic<std::int64_t> slots_executed_{0};
  std::atomic<std::int64_t> slots_skipped_{0};
  std::atomic<std::int64_t> retries_{0};
  std::atomic<std::int64_t> deadline_exceeded_{0};
  std::atomic<std::int64_t> failures_{0};
};

// The supervisor the sweep drivers should use right now: the installed one,
// except inside a pool worker (a nested sweep journals nothing — its outer
// slot already checkpoints the whole nested result).
Supervisor* current_for_sweep() noexcept;

// The single sweep entry point the drivers call: routes through the
// installed supervisor when one applies (journal replay, task policy,
// interrupt draining), and otherwise runs the same compute→payload→apply
// round trip directly on the pool. Both paths fold the *decoded* payload in
// slot order, so supervised, resumed and plain runs produce byte-identical
// reports by construction.
void supervised_sweep(
    const std::string& stage_name, std::size_t count,
    const std::function<std::string(std::size_t)>& compute,
    const std::function<void(std::size_t, const std::string&)>& apply,
    int jobs = 0);

// True when a supervisor is installed and has been interrupted — the tools'
// "skip the report, exit kExitInterrupted" check.
bool run_interrupted() noexcept;

}  // namespace sesp::recovery
