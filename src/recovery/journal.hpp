#pragma once

// Crash-consistent run journal (docs/robustness.md): an append-only,
// fsync'd, schema-versioned record stream keyed by (stage, slot) — the slot
// index is exactly the index exec::parallel_for_each hands each sweep task,
// so a journal written at --jobs=8 resumes bit-identically at --jobs=1.
//
// File layout (text-framed so a partial record is detectable by eye and by
// the loader):
//
//   sesp-journal/1 tool=<name> config=<hex16>
//   S <stage> <slot> <payload-bytes> <fnv1a-hex16>
//   <payload bytes>
//   .
//   L <worker> <stage> <lo> <len> <deadline-ms> <event> <fnv1a-hex16>
//   S ...
//
// "S" frames checkpoint completed sweep slots. "L" frames are the sharded
// execution layer's lease events (docs/robustness.md "Sharded execution"):
// a worker appends one when it claims, steals, or completes a slot range,
// so the journal is a durable audit trail of range ownership. Lease lines
// are single-line, checksummed over their own fields, and ignored by slot
// replay — they never affect a resumed report.
//
// Each record is written with one write(2) and (by default) one fsync(2),
// so after a crash the file is a valid prefix plus at most one torn tail
// record; open_resume() keeps every record whose frame and checksum verify
// and drops the tail. Appends from sweep workers are serialized by a mutex
// — journal writes are rare (one per completed slot) next to the slot's own
// simulation work.
//
// SESP_JOURNAL_FSYNC=0 disables the per-record fsync (tests, tmpfs).

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/digest.hpp"

namespace sesp::recovery {

// The journal's digest is the shared util/digest FNV-1a (one definition for
// the journal guard, the shard leases and the serve cache keys); these
// aliases keep the historical recovery:: spelling the call sites use.
inline std::uint64_t fnv1a(std::string_view text,
                           std::uint64_t h = util::kFnv1aOffsetBasis) noexcept {
  return util::fnv1a(text, h);
}
inline std::string fnv1a_hex(std::uint64_t h) { return util::fnv1a_hex(h); }

// One lease event in a worker's journal: worker `worker` claimed / stole /
// finished the slot range [lo, lo+len) of `stage`, holding it until the
// wall-clock deadline (unix milliseconds; 0 for "done" events, which never
// expire).
struct LeaseRecord {
  std::int32_t worker = -1;
  std::string stage;
  std::uint64_t lo = 0;
  std::uint64_t len = 0;
  std::int64_t deadline_ms = 0;
  std::string event;  // "claim" | "steal" | "done"
};

// One completed-slot record, in file order (read_journal_snapshot).
struct JournalRecord {
  std::string stage;
  std::uint64_t slot = 0;
  std::string payload;
};

// Read-only parse of a whole journal file — what --journal-inspect, the
// shard merger and the peer readers share with open_resume(). `records` and
// `leases` are in file order; `dropped` counts the torn tail (0 or 1 —
// everything after the first unverifiable frame is untrusted).
struct JournalSnapshot {
  bool ok = false;
  std::string error;
  std::string tool;
  std::uint64_t config_digest = 0;
  std::vector<JournalRecord> records;
  std::vector<LeaseRecord> leases;
  std::int64_t dropped = 0;
};

JournalSnapshot read_journal_snapshot(const std::string& path);

// Parses the journal header line (without trailing newline); false + *error
// on a schema/field mismatch.
bool parse_journal_header(std::string_view line, std::string* tool,
                          std::uint64_t* config_digest, std::string* error);

// Incremental frame parser: consumes verified frames from text[at..),
// appending to *records / *leases (either may be null), and returns the
// offset of the first unconsumed byte. Sets *torn when it stopped at an
// incomplete or unverifiable frame — a live peer's in-flight append, which
// a later call (with the grown file) may complete, or a genuine torn tail.
std::size_t parse_journal_frames(std::string_view text, std::size_t at,
                                 std::vector<JournalRecord>* records,
                                 std::vector<LeaseRecord>* leases,
                                 bool* torn);

class RunJournal {
 public:
  // Creates (truncates) `path` and writes the header. Returns nullptr and
  // fills *error when the file cannot be opened.
  static std::unique_ptr<RunJournal> create(const std::string& path,
                                            const std::string& tool,
                                            std::uint64_t config_digest,
                                            std::string* error);

  // Opens an existing journal for resumption: loads every intact record,
  // silently drops a torn tail (counted in dropped_on_load()), and reopens
  // the file for appending. Returns nullptr on a missing file or a corrupt
  // header.
  static std::unique_ptr<RunJournal> open_resume(const std::string& path,
                                                 std::string* error);

  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  const std::string& path() const noexcept { return path_; }
  const std::string& tool() const noexcept { return tool_; }
  std::uint64_t config_digest() const noexcept { return config_digest_; }

  // Guard against resuming under a different tool or configuration — a
  // journal replayed into the wrong sweep would silently corrupt results.
  bool matches(const std::string& tool,
               std::uint64_t config_digest) const noexcept {
    return tool_ == tool && config_digest_ == config_digest;
  }

  // Appends one completed-slot record (thread-safe; fsyncs unless disabled).
  // Returns false on a write error — the caller degrades to journal-less
  // execution, never aborts.
  bool append(const std::string& stage, std::uint64_t slot,
              const std::string& payload);

  // Appends one lease event line (thread-safe; fsyncs unless disabled).
  bool append_lease(const LeaseRecord& lease);

  // Payload of a previously completed slot, or nullptr. Stable until the
  // journal is destroyed.
  const std::string* lookup(const std::string& stage,
                            std::uint64_t slot) const;

  std::int64_t records() const;
  // Lease events loaded at open_resume() plus those appended since, in
  // order.
  std::vector<LeaseRecord> leases() const;
  std::int64_t dropped_on_load() const noexcept { return dropped_; }
  void set_fsync(bool on) noexcept { fsync_ = on; }
  // One explicit fsync — pairs with set_fsync(false) for bulk writers (the
  // shard merger) that batch records and sync once at the end.
  void sync();

 private:
  RunJournal() = default;

  std::string path_;
  std::string tool_;
  std::uint64_t config_digest_ = 0;
  int fd_ = -1;
  bool fsync_ = true;
  std::int64_t dropped_ = 0;

  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::uint64_t>, std::string> completed_;
  std::vector<LeaseRecord> leases_;
};

}  // namespace sesp::recovery
