#pragma once

// Crash-consistent run journal (docs/robustness.md): an append-only,
// fsync'd, schema-versioned record stream keyed by (stage, slot) — the slot
// index is exactly the index exec::parallel_for_each hands each sweep task,
// so a journal written at --jobs=8 resumes bit-identically at --jobs=1.
//
// File layout (text-framed so a partial record is detectable by eye and by
// the loader):
//
//   sesp-journal/1 tool=<name> config=<hex16>
//   S <stage> <slot> <payload-bytes> <fnv1a-hex16>
//   <payload bytes>
//   .
//   S ...
//
// Each record is written with one write(2) and (by default) one fsync(2),
// so after a crash the file is a valid prefix plus at most one torn tail
// record; open_resume() keeps every record whose frame and checksum verify
// and drops the tail. Appends from sweep workers are serialized by a mutex
// — journal writes are rare (one per completed slot) next to the slot's own
// simulation work.
//
// SESP_JOURNAL_FSYNC=0 disables the per-record fsync (tests, tmpfs).

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace sesp::recovery {

// FNV-1a, the same digest the conformance harness uses; exposed here for
// the tools' config digests.
std::uint64_t fnv1a(std::string_view text,
                    std::uint64_t h = 1469598103934665603ULL) noexcept;
// Canonical 16-hex-digit rendering used in headers and frames.
std::string fnv1a_hex(std::uint64_t h);

class RunJournal {
 public:
  // Creates (truncates) `path` and writes the header. Returns nullptr and
  // fills *error when the file cannot be opened.
  static std::unique_ptr<RunJournal> create(const std::string& path,
                                            const std::string& tool,
                                            std::uint64_t config_digest,
                                            std::string* error);

  // Opens an existing journal for resumption: loads every intact record,
  // silently drops a torn tail (counted in dropped_on_load()), and reopens
  // the file for appending. Returns nullptr on a missing file or a corrupt
  // header.
  static std::unique_ptr<RunJournal> open_resume(const std::string& path,
                                                 std::string* error);

  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  const std::string& path() const noexcept { return path_; }
  const std::string& tool() const noexcept { return tool_; }
  std::uint64_t config_digest() const noexcept { return config_digest_; }

  // Guard against resuming under a different tool or configuration — a
  // journal replayed into the wrong sweep would silently corrupt results.
  bool matches(const std::string& tool,
               std::uint64_t config_digest) const noexcept {
    return tool_ == tool && config_digest_ == config_digest;
  }

  // Appends one completed-slot record (thread-safe; fsyncs unless disabled).
  // Returns false on a write error — the caller degrades to journal-less
  // execution, never aborts.
  bool append(const std::string& stage, std::uint64_t slot,
              const std::string& payload);

  // Payload of a previously completed slot, or nullptr. Stable until the
  // journal is destroyed.
  const std::string* lookup(const std::string& stage,
                            std::uint64_t slot) const;

  std::int64_t records() const;
  std::int64_t dropped_on_load() const noexcept { return dropped_; }
  void set_fsync(bool on) noexcept { fsync_ = on; }

 private:
  RunJournal() = default;

  std::string path_;
  std::string tool_;
  std::uint64_t config_digest_ = 0;
  int fd_ = -1;
  bool fsync_ = true;
  std::int64_t dropped_ = 0;

  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::uint64_t>, std::string> completed_;
};

}  // namespace sesp::recovery
