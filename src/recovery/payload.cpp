#include "recovery/payload.hpp"

#include <cstdio>
#include <cstdlib>

namespace sesp::recovery {

namespace {

bool valid_key_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
}

std::string escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

bool unescape(std::string_view value, std::string* out) {
  out->clear();
  out->reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\') {
      *out += value[i];
      continue;
    }
    if (++i >= value.size()) return false;
    switch (value[i]) {
      case '\\': *out += '\\'; break;
      case 'n': *out += '\n'; break;
      case 'r': *out += '\r'; break;
      default: return false;
    }
  }
  return true;
}

}  // namespace

void PayloadWriter::put(std::string_view key, std::string_view value) {
  if (key.empty()) {
    std::fprintf(stderr, "recovery payload fatal: empty key\n");
    std::abort();
  }
  for (const char c : key)
    if (!valid_key_char(c)) {
      std::fprintf(stderr, "recovery payload fatal: bad key char in '%.*s'\n",
                   static_cast<int>(key.size()), key.data());
      std::abort();
    }
  text_.append(key);
  text_ += '=';
  text_ += escape(value);
  text_ += '\n';
}

void PayloadWriter::put_int(std::string_view key, std::int64_t value) {
  put(key, std::to_string(value));
}

void PayloadWriter::put_uint(std::string_view key, std::uint64_t value) {
  put(key, std::to_string(value));
}

void PayloadWriter::put_bool(std::string_view key, bool value) {
  put(key, value ? "1" : "0");
}

PayloadReader::PayloadReader(std::string_view payload) {
  std::size_t at = 0;
  while (at < payload.size()) {
    std::size_t end = payload.find('\n', at);
    if (end == std::string_view::npos) end = payload.size();
    const std::string_view line = payload.substr(at, end - at);
    at = end + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      ok_ = false;
      continue;
    }
    std::string value;
    if (!unescape(line.substr(eq + 1), &value)) {
      ok_ = false;
      continue;
    }
    fields_.emplace_back(std::string(line.substr(0, eq)), std::move(value));
  }
}

bool PayloadReader::has(std::string_view key) const noexcept {
  for (const auto& [k, v] : fields_)
    if (k == key) return true;
  return false;
}

std::string PayloadReader::get(std::string_view key,
                               std::string_view fallback) const {
  for (const auto& [k, v] : fields_)
    if (k == key) return v;
  return std::string(fallback);
}

std::int64_t PayloadReader::get_int(std::string_view key,
                                    std::int64_t fallback) const {
  for (const auto& [k, v] : fields_)
    if (k == key) {
      char* end = nullptr;
      const long long parsed = std::strtoll(v.c_str(), &end, 10);
      return (end && *end == '\0' && !v.empty()) ? parsed : fallback;
    }
  return fallback;
}

std::uint64_t PayloadReader::get_uint(std::string_view key,
                                      std::uint64_t fallback) const {
  for (const auto& [k, v] : fields_)
    if (k == key) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
      return (end && *end == '\0' && !v.empty()) ? parsed : fallback;
    }
  return fallback;
}

bool PayloadReader::get_bool(std::string_view key, bool fallback) const {
  for (const auto& [k, v] : fields_)
    if (k == key) return v == "1";
  return fallback;
}

}  // namespace sesp::recovery
