#pragma once

// Global dependency analysis over a timed computation — the <=_beta partial
// order of Theorem 5.1, generalized to both substrates and exposed as a
// reusable library object:
//
//  * program order:     consecutive steps of the same process;
//  * shared variables:  consecutive accesses of the same variable (SMM);
//  * messages:          send step -> delivery step -> receive step (MPM).
//
// The trace order is a topological order of this DAG, so reachability and
// longest-path queries are simple left-to-right sweeps. Used by tests to
// cross-check the retimers' chunk-local reachability, and by the
// bench_ablation information-flow experiment.

#include <cstdint>
#include <optional>
#include <vector>

#include "model/timed_computation.hpp"

namespace sesp {

class CausalOrder {
 public:
  // Builds the dependency DAG of the trace. O(steps + messages).
  explicit CausalOrder(const TimedComputation& trace);

  std::size_t num_steps() const noexcept { return preds_.size(); }

  // Direct predecessors of step i (empty for minimal steps).
  const std::vector<std::size_t>& predecessors(std::size_t i) const;

  // True iff step `from` happens-before step `to` (reflexive: a step
  // happens-before itself). BFS over the DAG, O(edges) per query.
  bool happens_before(std::size_t from, std::size_t to) const;

  // All steps reachable from `from` (including itself), as a boolean mask.
  std::vector<bool> descendants(std::size_t from) const;
  // All steps that reach `to` (including itself).
  std::vector<bool> ancestors(std::size_t to) const;

  // Length (in steps) of the longest dependency chain ending at each step;
  // depth(i) == 1 for minimal steps.
  const std::vector<std::size_t>& depths() const noexcept { return depths_; }
  // One longest chain overall, as step indices in order.
  std::vector<std::size_t> critical_path() const;

  // Earliest step of process q that is causally after step i (the
  // "information latency" from i to q), if any.
  std::optional<std::size_t> earliest_influence(std::size_t i,
                                                ProcessId q) const;

 private:
  const TimedComputation& trace_;
  std::vector<std::vector<std::size_t>> preds_;
  std::vector<std::vector<std::size_t>> succs_;
  std::vector<std::size_t> depths_;
};

}  // namespace sesp
