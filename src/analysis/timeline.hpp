#pragma once

// ASCII timeline rendering of timed computations: one lane per process,
// steps placed proportionally to their (exact rational) times, with session
// boundaries marked. Used by sesp_cli (--timeline) and handy when studying
// adversary-constructed counterexamples by eye.
//
//   p0   |--P----P----P--o
//   p1   |-P---P-----P---o
//   net  |....d...d.d....
//         ^ session 1 ^ session 2
//
// Legend: P port step, t tree/communication step, o idling step, d network
// delivery, | lane start (time 0).

#include <cstdint>
#include <string>

#include "model/timed_computation.hpp"

namespace sesp {

struct TimelineOptions {
  // Total character width of the time axis.
  std::int32_t width = 100;
  // Include the network delivery lane (MPM traces).
  bool show_network = true;
  // Mark greedy session boundaries under the lanes.
  bool show_sessions = true;
  // Only render the first `max_processes` lanes (0 = all).
  std::int32_t max_processes = 0;
};

// Renders the trace as a multi-line string. Steps that would collide on the
// same column keep the most significant glyph (idle > port > tree).
std::string render_timeline(const TimedComputation& trace,
                            const TimelineOptions& options = TimelineOptions{});

}  // namespace sesp
