#include "analysis/bounds.hpp"

#include <cstdio>
#include <cstdlib>

namespace sesp::bounds {

std::int64_t floor_log(std::int64_t base, std::int64_t x) {
  if (base < 2 || x < 1) {
    std::fprintf(stderr, "bounds::floor_log fatal: base >= 2, x >= 1\n");
    std::abort();
  }
  std::int64_t t = 0;
  std::int64_t power = 1;
  while (power <= x / base) {
    power *= base;
    ++t;
  }
  return t;
}

Time sync_tight(const ProblemSpec& spec, Duration c2) {
  return Ratio(spec.s) * c2;
}

Time periodic_sm_lower(const ProblemSpec& spec, Duration c_max,
                       Duration c_min) {
  const std::int64_t depth = floor_log(2 * spec.b - 1, 2 * spec.n - 1);
  return max(Ratio(spec.s) * c_max, Ratio(depth) * c_min);
}

Time periodic_sm_upper(const ProblemSpec& spec, Duration c_max,
                       std::int64_t tree_latency_steps) {
  // s-1 port steps, then (during the port/tree alternation of the waiting
  // phase) publish <= 2 steps, tree latency, hear <= 2 steps, final port
  // step <= 2 steps; each step period at most c_max.
  return Ratio(spec.s) * c_max + Ratio(tree_latency_steps + 6) * c_max;
}

Time periodic_mp_lower(const ProblemSpec& spec, Duration c_max, Duration d2) {
  return max(Ratio(spec.s) * c_max, d2);
}

Time periodic_mp_upper(const ProblemSpec& spec, Duration c_max, Duration d2) {
  return Ratio(spec.s) * c_max + d2;
}

Time semisync_sm_lower(const ProblemSpec& spec, Duration c1, Duration c2) {
  const Ratio steps =
      min(Ratio((c2 / (c1 * 2)).floor()), Ratio(floor_log(spec.b, spec.n)));
  return steps * c2 * Ratio(spec.s - 1);
}

Time semisync_sm_upper(const ProblemSpec& spec, Duration c1, Duration c2,
                       std::int64_t tree_latency_steps) {
  (void)spec;
  const Ratio step_branch = Ratio((c2 / c1).floor() + 1) * c2;
  const Ratio comm_branch = Ratio(tree_latency_steps + 4) * c2;
  return min(step_branch, comm_branch) * Ratio(spec.s - 1) + c2;
}

Time semisync_mp_lower(const ProblemSpec& spec, Duration c1, Duration c2,
                       Duration d2) {
  const Ratio step_branch = Ratio((c2 / (c1 * 2)).floor()) * c2;
  const Ratio comm_branch = d2 + c2;
  return min(step_branch, comm_branch) * Ratio(spec.s - 1);
}

Time semisync_mp_upper(const ProblemSpec& spec, Duration c1, Duration c2,
                       Duration d2) {
  const Ratio step_branch = Ratio((c2 / c1).floor() + 1) * c2;
  const Ratio comm_branch = d2 + c2;
  return min(step_branch, comm_branch) * Ratio(spec.s - 1) + c2;
}

Ratio sporadic_K(Duration c1, Duration d1, Duration d2) {
  const Duration u = d2 - d1;
  const Duration denom = d2 - u / 2;
  if (!denom.is_positive()) {
    std::fprintf(stderr, "bounds::sporadic_K fatal: d2 - u/2 <= 0\n");
    std::abort();
  }
  return (Ratio(2) * d2 * c1) / denom;
}

Time sporadic_mp_lower(const ProblemSpec& spec, Duration c1, Duration d1,
                       Duration d2) {
  const Duration u = d2 - d1;
  const Ratio per_session =
      max(Ratio((u / (c1 * 4)).floor()) * sporadic_K(c1, d1, d2), c1);
  return per_session * Ratio(spec.s - 1);
}

Time sporadic_mp_upper(const ProblemSpec& spec, Duration c1, Duration d1,
                       Duration d2, Duration gamma) {
  // The exact Theorem 6.1 statement:
  //   min{(floor(u/c1)+1)*gamma + u + 2*gamma, d2 + gamma} * (s-2)
  //     + d2 + 2*gamma.
  // (Table 1 displays the simplified (s-1)-factored form, which the paper
  // notes is equal when d1 < (floor(u/c1)+1)*gamma; the proof's bound is
  // this one.)
  if (spec.s <= 1) return gamma;  // every process idles at its first step
  const Duration u = d2 - d1;
  const Ratio branch1 = Ratio((u / c1).floor() + 1) * gamma + u + gamma * 2;
  const Ratio branch2 = d2 + gamma;
  return min(branch1, branch2) * Ratio(spec.s - 2) + d2 + gamma * 2;
}

std::int64_t async_sm_lower_rounds(const ProblemSpec& spec) {
  return (spec.s - 1) * floor_log(spec.b, spec.n);
}

std::int64_t async_sm_upper_rounds(const ProblemSpec& spec,
                                   std::int64_t tree_latency_steps) {
  // Per session: port step + publish + tree latency + hear, counted in
  // rounds (every process steps once per round, so a step period is one
  // round), plus one round of slack for the initial session.
  return spec.s * (tree_latency_steps + 4) + 1;
}

Time async_mp_lower(const ProblemSpec& spec, Duration d2) {
  return Ratio(spec.s - 1) * d2;
}

Time async_mp_upper(const ProblemSpec& spec, Duration c2, Duration d2) {
  return Ratio(spec.s - 1) * (d2 + c2) + c2;
}

}  // namespace sesp::bounds
