#pragma once

// Report rows for the Table 1 reproduction benches: predicted lower bound,
// measured worst case, predicted upper bound, and the sanity flags
// (L <= measured <= U, everything admissible, everything solved).

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/bench_record.hpp"
#include "sim/experiment.hpp"
#include "util/ratio.hpp"
#include "util/table.hpp"

namespace sesp {

struct BoundRow {
  std::string cell;        // e.g. "periodic/MP s=8 n=8"
  std::string measure;     // "time" or "rounds"
  Ratio lower;             // predicted L
  Ratio measured;          // measured worst case (time or rounds)
  Ratio upper;             // predicted U
  bool solved = false;     // all runs produced >= s sessions & terminated
  bool admissible = false; // all runs machine-checked admissible

  // The hard requirement: the algorithm never exceeds its predicted upper
  // bound. Whether the measured worst case also reaches the lower bound is
  // reported informationally (the finite adversary family need not contain
  // the exact L-achieving schedule; the executable lower-bound
  // constructions live in bench_lower_bounds).
  bool upper_ok() const { return measured <= upper; }
  bool lower_reached() const { return lower <= measured; }
};

class BoundReport {
 public:
  explicit BoundReport(std::string title);

  void add(BoundRow row);

  // Convenience: build a time-measured row from a WorstCase aggregate.
  void add_time_row(const std::string& cell, const Ratio& lower,
                    const WorstCase& wc, const Ratio& upper);
  // Rounds-measured row (asynchronous models).
  void add_rounds_row(const std::string& cell, std::int64_t lower,
                      const WorstCase& wc, std::int64_t upper);

  // True iff every row is solved, admissible and within its bounds.
  bool all_ok() const;

  void print(std::ostream& os) const;

  const std::vector<BoundRow>& rows() const { return rows_; }

  // Mirrors every row into the bench perf record (same cells and flags the
  // rendered table shows — the JSON and the table never disagree).
  void append_rows(obs::BenchRecorder& recorder) const;

  // {"title":...,"all_ok":...,"rows":[...]} with the same per-row fields as
  // the bench record schema.
  void write_json(obs::JsonWriter& w) const;

 private:
  std::string title_;
  std::vector<BoundRow> rows_;
};

}  // namespace sesp
