#pragma once

// Closed-form bound calculators — every cell of Table 1, in exact rational
// arithmetic. Cells containing an O(.) are instantiated with this
// implementation's concrete tree-latency constant (documented in
// smm/tree_network.hpp); benches report both the paper's leading term and
// the instantiated constant.

#include <cstdint>

#include "model/ids.hpp"
#include "timing/constraints.hpp"
#include "util/ratio.hpp"

namespace sesp::bounds {

// floor(log_base(x)) for base >= 2, x >= 1: the largest t with base^t <= x.
std::int64_t floor_log(std::int64_t base, std::int64_t x);

// --- Synchronous (row 1; L = U, both substrates) -------------------------
Time sync_tight(const ProblemSpec& spec, Duration c2);

// --- Periodic (row 2, Section 4) ------------------------------------------
// SM lower: max{s*c_max, floor(log_{2b-1}(2n-1)) * c_min}   (Theorem 4.3)
Time periodic_sm_lower(const ProblemSpec& spec, Duration c_max,
                       Duration c_min);
// SM upper: s*c_max + O(log_b n)*c_max, instantiated with the tree constant
// plus the leaf's own publish/hear/port bracketing steps (Theorem 4.1).
Time periodic_sm_upper(const ProblemSpec& spec, Duration c_max,
                       std::int64_t tree_latency_steps);
// MP lower: max{s*c_max, d2}                                 (Theorem 4.2)
Time periodic_mp_lower(const ProblemSpec& spec, Duration c_max, Duration d2);
// MP upper: s*c_max + d2                                     (Theorem 4.1)
Time periodic_mp_upper(const ProblemSpec& spec, Duration c_max, Duration d2);

// --- Semi-synchronous (row 3, Section 5 and [4]) ---------------------------
// SM lower: min{floor(c2/2c1), floor(log_b n)} * c2 * (s-1)  (Theorem 5.1)
Time semisync_sm_lower(const ProblemSpec& spec, Duration c1, Duration c2);
// SM upper: min{(floor(c2/c1)+1)*c2, O(log_b n)*c2}*(s-1) + c2
Time semisync_sm_upper(const ProblemSpec& spec, Duration c1, Duration c2,
                       std::int64_t tree_latency_steps);
// MP lower: min{floor(c2/2c1)*c2, d2+c2} * (s-1)             [4]
Time semisync_mp_lower(const ProblemSpec& spec, Duration c1, Duration c2,
                       Duration d2);
// MP upper: min{(floor(c2/c1)+1)*c2, d2+c2} * (s-1) + c2     [4]
Time semisync_mp_upper(const ProblemSpec& spec, Duration c1, Duration c2,
                       Duration d2);

// --- Sporadic (row 4, Section 6; MP only) ----------------------------------
// K = 2*d2*c1 / (d2 - u/2), u = d2 - d1                      (Theorem 6.5)
Ratio sporadic_K(Duration c1, Duration d1, Duration d2);
// lower: max{floor(u/4c1)*K, c1} * (s-1)
Time sporadic_mp_lower(const ProblemSpec& spec, Duration c1, Duration d1,
                       Duration d2);
// upper: min{(floor(u/c1)+3)*gamma + u, d2+gamma} * (s-1) + gamma
// (Theorem 6.1; gamma is per-computation)
Time sporadic_mp_upper(const ProblemSpec& spec, Duration c1, Duration d1,
                       Duration d2, Duration gamma);

// --- Asynchronous (row 5, [2] / [4]) ---------------------------------------
// SM, in rounds. lower: (s-1)*floor(log_b n); upper: (s-1)*O(log_b n)
// instantiated with the per-session round cost of the knowledge-round
// algorithm.
std::int64_t async_sm_lower_rounds(const ProblemSpec& spec);
std::int64_t async_sm_upper_rounds(const ProblemSpec& spec,
                                   std::int64_t tree_latency_steps);
// MP, real time. lower: (s-1)*d2; upper: (s-1)*(d2+c2) + c2
Time async_mp_lower(const ProblemSpec& spec, Duration d2);
Time async_mp_upper(const ProblemSpec& spec, Duration c2, Duration d2);

}  // namespace sesp::bounds
