#include "analysis/causality.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <queue>

namespace sesp {

CausalOrder::CausalOrder(const TimedComputation& trace)
    : trace_(trace),
      preds_(trace.steps().size()),
      succs_(trace.steps().size()),
      depths_(trace.steps().size(), 1) {
  const auto& steps = trace.steps();

  auto add_edge = [this](std::size_t from, std::size_t to) {
    preds_[to].push_back(from);
    succs_[from].push_back(to);
  };

  std::map<ProcessId, std::size_t> last_of_process;
  std::map<VarId, std::size_t> last_of_var;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const StepRecord& st = steps[i];
    // Program order (network delivery steps are steps of N and are chained
    // through the message edges instead, matching the paper's model where N
    // has no local state of its own worth ordering).
    if (st.is_compute()) {
      if (auto it = last_of_process.find(st.process);
          it != last_of_process.end())
        add_edge(it->second, i);
      last_of_process[st.process] = i;
    }
    // Shared-variable order.
    if (st.var != kNoVar) {
      if (auto it = last_of_var.find(st.var); it != last_of_var.end())
        add_edge(it->second, i);
      last_of_var[st.var] = i;
    }
  }
  // Message edges.
  for (const MessageRecord& m : trace.messages()) {
    if (m.delivered()) add_edge(m.send_step, m.deliver_step);
    if (m.received()) add_edge(m.deliver_step, m.receive_step);
  }

  // Depths: trace order is topological (every edge goes forward).
  for (std::size_t i = 0; i < steps.size(); ++i) {
    for (const std::size_t p : preds_[i]) {
      if (p >= i) {
        std::fprintf(stderr, "CausalOrder fatal: trace not topological\n");
        std::abort();
      }
      depths_[i] = std::max(depths_[i], depths_[p] + 1);
    }
  }
}

const std::vector<std::size_t>& CausalOrder::predecessors(
    std::size_t i) const {
  return preds_.at(i);
}

std::vector<bool> CausalOrder::descendants(std::size_t from) const {
  std::vector<bool> mark(num_steps(), false);
  if (from >= num_steps()) return mark;
  mark[from] = true;
  // Left-to-right sweep: all edges point forward.
  for (std::size_t i = from; i < num_steps(); ++i) {
    if (mark[i]) continue;
    for (const std::size_t p : preds_[i]) {
      if (mark[p]) {
        mark[i] = true;
        break;
      }
    }
  }
  return mark;
}

std::vector<bool> CausalOrder::ancestors(std::size_t to) const {
  std::vector<bool> mark(num_steps(), false);
  if (to >= num_steps()) return mark;
  mark[to] = true;
  for (std::size_t i = to + 1; i-- > 0;) {
    if (!mark[i]) continue;
    for (const std::size_t p : preds_[i]) mark[p] = true;
  }
  return mark;
}

bool CausalOrder::happens_before(std::size_t from, std::size_t to) const {
  if (from > to) return false;
  if (from == to) return true;
  return descendants(from)[to];
}

std::vector<std::size_t> CausalOrder::critical_path() const {
  if (num_steps() == 0) return {};
  std::size_t best = 0;
  for (std::size_t i = 1; i < num_steps(); ++i)
    if (depths_[i] > depths_[best]) best = i;
  std::vector<std::size_t> path{best};
  while (depths_[path.back()] > 1) {
    const std::size_t at = path.back();
    for (const std::size_t p : preds_[at]) {
      if (depths_[p] + 1 == depths_[at]) {
        path.push_back(p);
        break;
      }
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<std::size_t> CausalOrder::earliest_influence(
    std::size_t i, ProcessId q) const {
  const std::vector<bool> mark = descendants(i);
  for (std::size_t j = i; j < num_steps(); ++j) {
    if (mark[j] && trace_.steps()[j].is_compute() &&
        trace_.steps()[j].process == q)
      return j;
  }
  return std::nullopt;
}

}  // namespace sesp
