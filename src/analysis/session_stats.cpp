#include "analysis/session_stats.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "session/session_counter.hpp"

namespace sesp {

SessionStats compute_session_stats(const TimedComputation& trace) {
  SessionStats stats;
  stats.port_steps.assign(static_cast<std::size_t>(trace.num_ports()), 0);

  const SessionDecomposition d = count_sessions(trace);
  stats.sessions = d.sessions;
  stats.close_times = d.close_times;

  for (const StepRecord& st : trace.steps())
    if (st.is_port_step() && st.port < trace.num_ports())
      ++stats.port_steps[static_cast<std::size_t>(st.port)];

  Time prev(0);
  double sum = 0.0;
  std::map<PortIndex, std::int64_t> closer_count;
  for (std::size_t k = 0; k < d.cut_points.size(); ++k) {
    const Duration gap = d.close_times[k] - prev;
    prev = d.close_times[k];
    stats.gaps.push_back(gap);
    sum += gap.to_double();
    if (k == 0 || gap < stats.min_gap) stats.min_gap = gap;
    if (k == 0 || stats.max_gap < gap) stats.max_gap = gap;

    const StepRecord& closing = trace.steps()[d.cut_points[k] - 1];
    stats.closers.push_back(closing.port);
    ++closer_count[closing.port];
  }
  if (stats.sessions > 0) {
    stats.mean_gap = sum / static_cast<double>(stats.sessions);
    stats.most_frequent_closer =
        std::max_element(closer_count.begin(), closer_count.end(),
                         [](const auto& a, const auto& b) {
                           return a.second < b.second;
                         })
            ->first;
  }
  return stats;
}

std::string SessionStats::to_string() const {
  std::ostringstream os;
  os << sessions << " sessions";
  if (sessions > 0) {
    os << "; gap min/mean/max = " << min_gap.to_string() << " / ";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", mean_gap);
    os << buf << " / " << max_gap.to_string() << "; closed mostly by port "
       << most_frequent_closer;
  }
  os << "; port steps = [";
  for (std::size_t p = 0; p < port_steps.size(); ++p)
    os << (p ? " " : "") << port_steps[p];
  os << "]";
  return os.str();
}

}  // namespace sesp
