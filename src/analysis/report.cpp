#include "analysis/report.hpp"

#include <ostream>

namespace sesp {

BoundReport::BoundReport(std::string title) : title_(std::move(title)) {}

void BoundReport::add(BoundRow row) { rows_.push_back(std::move(row)); }

void BoundReport::add_time_row(const std::string& cell, const Ratio& lower,
                               const WorstCase& wc, const Ratio& upper) {
  BoundRow row;
  row.cell = cell;
  row.measure = "time";
  row.lower = lower;
  row.measured = wc.max_termination;
  row.upper = upper;
  row.solved = wc.all_solved;
  row.admissible = wc.all_admissible;
  rows_.push_back(std::move(row));
}

void BoundReport::add_rounds_row(const std::string& cell, std::int64_t lower,
                                 const WorstCase& wc, std::int64_t upper) {
  BoundRow row;
  row.cell = cell;
  row.measure = "rounds";
  row.lower = Ratio(lower);
  row.measured = Ratio(wc.max_rounds);
  row.upper = Ratio(upper);
  row.solved = wc.all_solved;
  row.admissible = wc.all_admissible;
  rows_.push_back(std::move(row));
}

bool BoundReport::all_ok() const {
  for (const BoundRow& row : rows_)
    if (!row.solved || !row.admissible || !row.upper_ok()) return false;
  return true;
}

void BoundReport::print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  TextTable table({"cell", "measure", "predicted L", "measured worst",
                   "predicted U", "meas/U", "solved", "admissible", "m<=U",
                   "L<=m"});
  for (const BoundRow& row : rows_) {
    table.add_row({row.cell, row.measure, fmt(row.lower), fmt(row.measured),
                   fmt(row.upper), fmt_ratio_of(row.measured, row.upper),
                   row.solved ? "yes" : "NO", row.admissible ? "yes" : "NO",
                   row.upper_ok() ? "yes" : "NO",
                   row.lower_reached() ? "yes" : "no"});
  }
  table.print(os);
  os << (all_ok() ? "[OK] all rows solved, admissible, within upper bounds\n"
                  : "[FAIL] some row exceeded its upper bound or failed\n");
}

}  // namespace sesp
