#include "analysis/report.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace sesp {

BoundReport::BoundReport(std::string title) : title_(std::move(title)) {}

void BoundReport::add(BoundRow row) { rows_.push_back(std::move(row)); }

void BoundReport::add_time_row(const std::string& cell, const Ratio& lower,
                               const WorstCase& wc, const Ratio& upper) {
  BoundRow row;
  row.cell = cell;
  row.measure = "time";
  row.lower = lower;
  row.measured = wc.max_termination;
  row.upper = upper;
  row.solved = wc.all_solved;
  row.admissible = wc.all_admissible;
  rows_.push_back(std::move(row));
}

void BoundReport::add_rounds_row(const std::string& cell, std::int64_t lower,
                                 const WorstCase& wc, std::int64_t upper) {
  BoundRow row;
  row.cell = cell;
  row.measure = "rounds";
  row.lower = Ratio(lower);
  row.measured = Ratio(wc.max_rounds);
  row.upper = Ratio(upper);
  row.solved = wc.all_solved;
  row.admissible = wc.all_admissible;
  rows_.push_back(std::move(row));
}

bool BoundReport::all_ok() const {
  for (const BoundRow& row : rows_)
    if (!row.solved || !row.admissible || !row.upper_ok()) return false;
  return true;
}

void BoundReport::print(std::ostream& os) const {
  os << "== " << title_ << " ==\n";
  TextTable table({"cell", "measure", "predicted L", "measured worst",
                   "predicted U", "meas/U", "solved", "admissible", "m<=U",
                   "L<=m"});
  for (const BoundRow& row : rows_) {
    table.add_row({row.cell, row.measure, fmt(row.lower), fmt(row.measured),
                   fmt(row.upper), fmt_ratio_of(row.measured, row.upper),
                   row.solved ? "yes" : "NO", row.admissible ? "yes" : "NO",
                   row.upper_ok() ? "yes" : "NO",
                   row.lower_reached() ? "yes" : "no"});
  }
  table.print(os);
  os << (all_ok() ? "[OK] all rows solved, admissible, within upper bounds\n"
                  : "[FAIL] some row exceeded its upper bound or failed\n");
}

void BoundReport::append_rows(obs::BenchRecorder& recorder) const {
  for (const BoundRow& row : rows_) {
    obs::PerfRow perf;
    perf.cell = row.cell;
    perf.measure = row.measure;
    perf.lower = row.lower;
    perf.measured = row.measured;
    perf.upper = row.upper;
    perf.solved = row.solved;
    perf.admissible = row.admissible;
    perf.upper_ok = row.upper_ok();
    perf.lower_reached = row.lower_reached();
    recorder.add_row(std::move(perf));
  }
}

void BoundReport::write_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.field("title", title_);
  w.field("all_ok", all_ok());
  w.key("rows");
  w.begin_array();
  for (const BoundRow& row : rows_) {
    w.begin_object();
    w.field("cell", row.cell);
    w.field("measure", row.measure);
    w.field("lower", row.lower);
    w.field("measured", row.measured);
    w.field("upper", row.upper);
    w.field("lower_approx", row.lower.to_double());
    w.field("measured_approx", row.measured.to_double());
    w.field("upper_approx", row.upper.to_double());
    w.field("solved", row.solved);
    w.field("admissible", row.admissible);
    w.field("upper_ok", row.upper_ok());
    w.field("lower_reached", row.lower_reached());
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace sesp
