#include "analysis/timeline.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "session/session_counter.hpp"

namespace sesp {

namespace {

// Glyph precedence when steps collide in one column.
int precedence(char glyph) {
  switch (glyph) {
    case 'o': return 3;  // idling step
    case 'P': return 2;  // port step
    case 't': return 1;  // other compute (tree / wait)
    case 'd': return 1;  // delivery
    default: return 0;
  }
}

void put(std::string& lane, std::size_t column, char glyph) {
  if (column >= lane.size()) return;
  if (precedence(glyph) >= precedence(lane[column])) lane[column] = glyph;
}

}  // namespace

std::string render_timeline(const TimedComputation& trace,
                            const TimelineOptions& options) {
  std::ostringstream os;
  if (trace.steps().empty()) return "(empty trace)\n";

  const Time end = trace.end_time();
  const std::int32_t width = std::max<std::int32_t>(options.width, 10);
  const auto column_of = [&](const Time& t) -> std::size_t {
    if (!end.is_positive()) return 0;
    const Ratio frac = t / end;
    const auto col = (frac * Ratio(width - 1)).floor();
    return static_cast<std::size_t>(
        std::clamp<std::int64_t>(col, 0, width - 1));
  };

  std::int32_t lanes = trace.num_processes();
  if (options.max_processes > 0)
    lanes = std::min(lanes, options.max_processes);

  std::vector<std::string> lane(
      static_cast<std::size_t>(lanes),
      std::string(static_cast<std::size_t>(width), '-'));
  std::string net_lane(static_cast<std::size_t>(width), '.');
  bool has_deliveries = false;

  for (const StepRecord& st : trace.steps()) {
    const std::size_t col = column_of(st.time);
    if (st.kind == StepKind::kDeliver) {
      has_deliveries = true;
      put(net_lane, col, 'd');
      continue;
    }
    if (st.process >= lanes) continue;
    char glyph = st.port != kNoPort ? 'P' : 't';
    if (st.idle_after) glyph = 'o';
    put(lane[static_cast<std::size_t>(st.process)], col, glyph);
  }

  // Lane labels, fixed width.
  const auto label_of = [&](std::int32_t p) {
    std::string label = "p" + std::to_string(p);
    if (p < trace.num_ports()) label += "*";  // port process
    return label;
  };
  std::size_t label_width = has_deliveries ? 4 : 3;  // "net "
  for (std::int32_t p = 0; p < lanes; ++p)
    label_width = std::max(label_width, label_of(p).size() + 1);

  for (std::int32_t p = 0; p < lanes; ++p) {
    std::string label = label_of(p);
    label.resize(label_width, ' ');
    os << label << '|' << lane[static_cast<std::size_t>(p)] << '\n';
  }
  if (has_deliveries && options.show_network) {
    std::string label = "net";
    label.resize(label_width, ' ');
    os << label << '|' << net_lane << '\n';
  }
  if (lanes < trace.num_processes())
    os << "(" << trace.num_processes() - lanes << " more lanes hidden)\n";

  if (options.show_sessions) {
    const SessionDecomposition sessions = count_sessions(trace);
    std::string marks(static_cast<std::size_t>(width), ' ');
    for (const Time& t : sessions.close_times)
      put(marks, column_of(t), '^');
    std::string label(label_width, ' ');
    os << label << ' ' << marks << "  (" << sessions.sessions
       << " sessions; ^ = greedy close)\n";
  }
  os << std::string(label_width, ' ') << " 0" << std::string(width - 8, ' ')
     << "t=" << end.to_string() << '\n';
  return os.str();
}

}  // namespace sesp
