#pragma once

// Per-session statistics of a timed computation: when each greedy session
// closes, the gaps between closings (the measured "per-session cost" the
// paper's bounds govern), which process's port step closes each session,
// and per-port participation counts. Consumed by benches and the CLI for
// the qualitative analysis that the aggregate bounds hide.

#include <cstdint>
#include <string>
#include <vector>

#include "model/timed_computation.hpp"
#include "util/ratio.hpp"

namespace sesp {

struct SessionStats {
  std::int64_t sessions = 0;

  // Time at which session k closed (size == sessions).
  std::vector<Time> close_times;
  // close_times[k] - close_times[k-1]; gaps[0] measures from time 0.
  std::vector<Duration> gaps;
  // The port whose step completed each session.
  std::vector<PortIndex> closers;

  // Port steps per port over the whole trace.
  std::vector<std::int64_t> port_steps;

  // Extremes of the per-session gaps (exact); 0s when no sessions.
  Duration min_gap;
  Duration max_gap;
  // Mean gap as a double, for display.
  double mean_gap = 0.0;

  // A port that closes disproportionately many sessions is the bottleneck
  // (typically the slowest process under the periodic model).
  PortIndex most_frequent_closer = kNoPort;

  std::string to_string() const;
};

SessionStats compute_session_stats(const TimedComputation& trace);

}  // namespace sesp
