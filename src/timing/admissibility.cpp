#include "timing/admissibility.hpp"

#include <sstream>
#include <vector>

namespace sesp {

namespace {

AdmissibilityReport violation(std::string text,
                              std::optional<ViolationSite> site =
                                  std::nullopt) {
  AdmissibilityReport r;
  r.admissible = false;
  r.violation = std::move(text);
  r.site = std::move(site);
  return r;
}

ViolationSite step_site(std::size_t step_index, ProcessId process,
                        const Time& time, MsgId message = kNoMsg) {
  ViolationSite s;
  s.step_index = step_index;
  s.process = process;
  s.time = time;
  s.message = message;
  return s;
}

std::string describe_gap(ProcessId p, std::size_t step_index, const Time& prev,
                         const Time& now) {
  std::ostringstream os;
  os << "process " << p << " step at index " << step_index << ": gap "
     << (now - prev) << " (prev t=" << prev << ", now t=" << now << ")";
  return os.str();
}

}  // namespace

AdmissibilityScan::AdmissibilityScan(const TimedComputation& tc,
                                     const TimingConstraints& c)
    : tc_(tc),
      c_(c),
      model_(c.model),
      num_processes_(tc.num_processes()),
      prev_time_(0),
      delay_lo_(0),
      delay_hi_(c.d2) {
  no_gap_bounds_ = model_ == TimingModel::kAsynchronous &&
                   tc.substrate() == Substrate::kSharedMemory;
  const auto n =
      static_cast<std::size_t>(num_processes_ > 0 ? num_processes_ : 0);
  ok_ = num_processes_ >= 0 &&
        (model_ != TimingModel::kPeriodic || c.periods.size() >= n);
  idle_.assign(n, false);
  last_.assign(n, Time(0));
  pending_.resize(n);
  switch (model_) {
    case TimingModel::kSynchronous:
      delay_exact_ = true;
      delay_lo_ = c.d2;
      break;
    case TimingModel::kSporadic:
      delay_lo_ = c.d1;
      break;
    case TimingModel::kPeriodic:
    case TimingModel::kSemiSynchronous:
    case TimingModel::kAsynchronous:
      break;  // [0, d2]
  }
}

void AdmissibilityScan::messages() {
  if (!ok_) return;
  // Every message consumed by the send cursor, every claimed delivery
  // vouched by its delivery step, every claimed receipt vouched by its
  // recipient's compute step — otherwise some per-message check is
  // unproven and the precise path decides.
  ok_ = next_send_ == tc_.messages().size() &&
        matched_deliver_ == delivered_total_ &&
        matched_receive_ == received_total_;
}

AdmissibilityReport check_admissible(const TimedComputation& tc,
                                     const TimingConstraints& constraints) {
  if (auto err = constraints.validate())
    return violation("invalid constraints: " + *err);
  // Fast path: one fused pass proving every check below holds at once. Any
  // anomaly falls through to the precise sequence, whose error selection
  // and wording are the compatibility contract.
  {
    AdmissibilityScan scan(tc, constraints);
    for (const StepRecord& st : tc.steps()) {
      scan.step(st);
      if (!scan.proven()) break;
    }
    scan.messages();
    if (scan.proven()) return AdmissibilityReport{};
  }
  if (auto err = tc.structural_error())
    return violation("structural: " + *err);

  const TimingModel model = constraints.model;
  const bool smm = tc.substrate() == Substrate::kSharedMemory;

  if (model == TimingModel::kPeriodic &&
      constraints.periods.size() <
          static_cast<std::size_t>(tc.num_processes()))
    return violation("periodic: fewer periods than processes");

  // Per-process step-gap constraints, with time 0 as virtual predecessor.
  // Flat per-process array (docs/performance.md): the structural check above
  // already rejected out-of-range process ids, and "no step yet" and the
  // virtual time-0 predecessor coincide, so no presence flags are needed.
  // The asynchronous SMM puts no bound on gaps at all, so the whole loop
  // would only compute differences and discard them — skip it outright
  // (livelocked async traces are the longest ones the bench verifies).
  const bool no_gap_bounds = model == TimingModel::kAsynchronous && smm;
  std::vector<Time> last(static_cast<std::size_t>(tc.num_processes()),
                         Time(0));
  const auto& steps = tc.steps();
  for (std::size_t i = 0; !no_gap_bounds && i < steps.size(); ++i) {
    const StepRecord& st = steps[i];
    if (!st.is_compute()) continue;
    Time& slot = last[static_cast<std::size_t>(st.process)];
    const Time prev = slot;
    const Duration gap = st.time - prev;
    slot = st.time;
    // Violations are rare; build the site lazily so the admissible path
    // does no per-step ViolationSite work.
    const auto site = [&] { return step_site(i, st.process, st.time); };

    switch (model) {
      case TimingModel::kSynchronous:
        if (gap != constraints.c2)
          return violation("synchronous: " + describe_gap(st.process, i, prev,
                                                          st.time) +
                               ", expected exactly " +
                               constraints.c2.to_string(),
                           site());
        break;
      case TimingModel::kPeriodic: {
        const Duration period =
            constraints.periods[static_cast<std::size_t>(st.process)];
        if (gap != period)
          return violation("periodic: " +
                               describe_gap(st.process, i, prev, st.time) +
                               ", expected exactly " + period.to_string(),
                           site());
        break;
      }
      case TimingModel::kSemiSynchronous:
        if (gap < constraints.c1 || constraints.c2 < gap)
          return violation("semi-synchronous: " +
                               describe_gap(st.process, i, prev, st.time) +
                               ", expected in [" + constraints.c1.to_string() +
                               ", " + constraints.c2.to_string() + "]",
                           site());
        break;
      case TimingModel::kSporadic:
        if (gap < constraints.c1)
          return violation("sporadic: " +
                               describe_gap(st.process, i, prev, st.time) +
                               ", expected >= " + constraints.c1.to_string(),
                           site());
        break;
      case TimingModel::kAsynchronous:
        if (smm) break;  // no bounds in the shared memory form ([2])
        if (!gap.is_positive() || constraints.c2 < gap)
          return violation("asynchronous MPM: " +
                               describe_gap(st.process, i, prev, st.time) +
                               ", expected in (0, " +
                               constraints.c2.to_string() + "]",
                           site());
        break;
    }
  }

  // Message-delay constraints (MPM traces).
  for (const MessageRecord& m : tc.messages()) {
    if (!m.delivered()) continue;
    const Duration delay =
        steps[m.deliver_step].time - steps[m.send_step].time;
    Duration lo = 0, hi = constraints.d2;
    bool exact = false;
    switch (model) {
      case TimingModel::kSynchronous:
        exact = true;
        lo = hi = constraints.d2;
        break;
      case TimingModel::kSporadic:
        lo = constraints.d1;
        break;
      case TimingModel::kPeriodic:
      case TimingModel::kSemiSynchronous:
      case TimingModel::kAsynchronous:
        break;  // [0, d2]
    }
    if (exact ? delay != hi : (delay < lo || hi < delay)) {
      std::ostringstream os;
      os << to_string(model) << ": message " << m.id << " delay " << delay
         << " outside [" << lo << ", " << hi << "]";
      return violation(os.str(),
                       step_site(m.deliver_step, m.recipient,
                                 steps[m.deliver_step].time, m.id));
    }
  }

  return AdmissibilityReport{};
}

}  // namespace sesp
