#include "timing/admissibility.hpp"

#include <map>
#include <sstream>

namespace sesp {

namespace {

AdmissibilityReport violation(std::string text,
                              std::optional<ViolationSite> site =
                                  std::nullopt) {
  AdmissibilityReport r;
  r.admissible = false;
  r.violation = std::move(text);
  r.site = std::move(site);
  return r;
}

ViolationSite step_site(std::size_t step_index, ProcessId process,
                        const Time& time, MsgId message = kNoMsg) {
  ViolationSite s;
  s.step_index = step_index;
  s.process = process;
  s.time = time;
  s.message = message;
  return s;
}

std::string describe_gap(ProcessId p, std::size_t step_index, const Time& prev,
                         const Time& now) {
  std::ostringstream os;
  os << "process " << p << " step at index " << step_index << ": gap "
     << (now - prev) << " (prev t=" << prev << ", now t=" << now << ")";
  return os.str();
}

}  // namespace

AdmissibilityReport check_admissible(const TimedComputation& tc,
                                     const TimingConstraints& constraints) {
  if (auto err = constraints.validate())
    return violation("invalid constraints: " + *err);
  if (auto err = tc.structural_error())
    return violation("structural: " + *err);

  const TimingModel model = constraints.model;
  const bool smm = tc.substrate() == Substrate::kSharedMemory;

  if (model == TimingModel::kPeriodic &&
      constraints.periods.size() <
          static_cast<std::size_t>(tc.num_processes()))
    return violation("periodic: fewer periods than processes");

  // Per-process step-gap constraints, with time 0 as virtual predecessor.
  std::map<ProcessId, Time> last;
  const auto& steps = tc.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const StepRecord& st = steps[i];
    if (!st.is_compute()) continue;
    const auto it = last.find(st.process);
    const Time prev = it == last.end() ? Time(0) : it->second;
    const Duration gap = st.time - prev;
    last[st.process] = st.time;
    const auto site = step_site(i, st.process, st.time);

    switch (model) {
      case TimingModel::kSynchronous:
        if (gap != constraints.c2)
          return violation("synchronous: " + describe_gap(st.process, i, prev,
                                                          st.time) +
                               ", expected exactly " +
                               constraints.c2.to_string(),
                           site);
        break;
      case TimingModel::kPeriodic: {
        const Duration period =
            constraints.periods[static_cast<std::size_t>(st.process)];
        if (gap != period)
          return violation("periodic: " +
                               describe_gap(st.process, i, prev, st.time) +
                               ", expected exactly " + period.to_string(),
                           site);
        break;
      }
      case TimingModel::kSemiSynchronous:
        if (gap < constraints.c1 || constraints.c2 < gap)
          return violation("semi-synchronous: " +
                               describe_gap(st.process, i, prev, st.time) +
                               ", expected in [" + constraints.c1.to_string() +
                               ", " + constraints.c2.to_string() + "]",
                           site);
        break;
      case TimingModel::kSporadic:
        if (gap < constraints.c1)
          return violation("sporadic: " +
                               describe_gap(st.process, i, prev, st.time) +
                               ", expected >= " + constraints.c1.to_string(),
                           site);
        break;
      case TimingModel::kAsynchronous:
        if (smm) break;  // no bounds in the shared memory form ([2])
        if (!gap.is_positive() || constraints.c2 < gap)
          return violation("asynchronous MPM: " +
                               describe_gap(st.process, i, prev, st.time) +
                               ", expected in (0, " +
                               constraints.c2.to_string() + "]",
                           site);
        break;
    }
  }

  // Message-delay constraints (MPM traces).
  for (const MessageRecord& m : tc.messages()) {
    if (!m.delivered()) continue;
    const Duration delay =
        steps[m.deliver_step].time - steps[m.send_step].time;
    Duration lo = 0, hi = constraints.d2;
    bool exact = false;
    switch (model) {
      case TimingModel::kSynchronous:
        exact = true;
        lo = hi = constraints.d2;
        break;
      case TimingModel::kSporadic:
        lo = constraints.d1;
        break;
      case TimingModel::kPeriodic:
      case TimingModel::kSemiSynchronous:
      case TimingModel::kAsynchronous:
        break;  // [0, d2]
    }
    if (exact ? delay != hi : (delay < lo || hi < delay)) {
      std::ostringstream os;
      os << to_string(model) << ": message " << m.id << " delay " << delay
         << " outside [" << lo << ", " << hi << "]";
      return violation(os.str(),
                       step_site(m.deliver_step, m.recipient,
                                 steps[m.deliver_step].time, m.id));
    }
  }

  return AdmissibilityReport{};
}

}  // namespace sesp
