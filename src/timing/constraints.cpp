#include "timing/constraints.hpp"

#include <cstdio>
#include <cstdlib>

namespace sesp {

std::string to_string(TimingModel model) {
  switch (model) {
    case TimingModel::kSynchronous: return "synchronous";
    case TimingModel::kPeriodic: return "periodic";
    case TimingModel::kSemiSynchronous: return "semi-synchronous";
    case TimingModel::kSporadic: return "sporadic";
    case TimingModel::kAsynchronous: return "asynchronous";
  }
  return "unknown";
}

Duration TimingConstraints::c_max() const {
  if (periods.empty()) {
    std::fprintf(stderr, "TimingConstraints fatal: c_max with no periods\n");
    std::abort();
  }
  Duration best = periods.front();
  for (const Duration& p : periods)
    if (best < p) best = p;
  return best;
}

Duration TimingConstraints::c_min() const {
  if (periods.empty()) {
    std::fprintf(stderr, "TimingConstraints fatal: c_min with no periods\n");
    std::abort();
  }
  Duration best = periods.front();
  for (const Duration& p : periods)
    if (p < best) best = p;
  return best;
}

std::optional<std::string> TimingConstraints::validate() const {
  if (d1.is_negative() || d2 < d1) return "need 0 <= d1 <= d2";
  switch (model) {
    case TimingModel::kSynchronous:
      if (!c2.is_positive()) return "synchronous: need c2 > 0";
      break;
    case TimingModel::kPeriodic:
      if (periods.empty()) return "periodic: need per-process periods";
      for (const Duration& p : periods)
        if (!p.is_positive()) return "periodic: periods must be positive";
      break;
    case TimingModel::kSemiSynchronous:
      if (!c1.is_positive()) return "semi-synchronous: need c1 > 0";
      if (c2 < c1) return "semi-synchronous: need c1 <= c2";
      break;
    case TimingModel::kSporadic:
      if (!c1.is_positive()) return "sporadic: need c1 > 0";
      break;
    case TimingModel::kAsynchronous:
      if (!c2.is_positive()) return "asynchronous: need c2 > 0 (MPM form)";
      break;
  }
  return std::nullopt;
}

TimingConstraints TimingConstraints::synchronous(Duration c2, Duration d2) {
  TimingConstraints tc;
  tc.model = TimingModel::kSynchronous;
  tc.c1 = c2;
  tc.c2 = c2;
  tc.d1 = d2;
  tc.d2 = d2;
  return tc;
}

TimingConstraints TimingConstraints::periodic(std::vector<Duration> periods,
                                              Duration d2) {
  TimingConstraints tc;
  tc.model = TimingModel::kPeriodic;
  tc.periods = std::move(periods);
  tc.c1 = tc.c_min();
  tc.c2 = tc.c_max();
  tc.d1 = 0;
  tc.d2 = d2;
  return tc;
}

TimingConstraints TimingConstraints::semi_synchronous(Duration c1, Duration c2,
                                                      Duration d2) {
  TimingConstraints tc;
  tc.model = TimingModel::kSemiSynchronous;
  tc.c1 = c1;
  tc.c2 = c2;
  tc.d1 = 0;
  tc.d2 = d2;
  return tc;
}

TimingConstraints TimingConstraints::sporadic(Duration c1, Duration d1,
                                              Duration d2) {
  TimingConstraints tc;
  tc.model = TimingModel::kSporadic;
  tc.c1 = c1;
  tc.c2 = 0;  // unused: no upper bound on step time
  tc.d1 = d1;
  tc.d2 = d2;
  return tc;
}

TimingConstraints TimingConstraints::asynchronous(Duration c2, Duration d2) {
  TimingConstraints tc;
  tc.model = TimingModel::kAsynchronous;
  tc.c1 = 0;
  tc.c2 = c2;
  tc.d1 = 0;
  tc.d2 = d2;
  return tc;
}

}  // namespace sesp
