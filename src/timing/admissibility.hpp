#pragma once

// Machine checker for the paper's admissibility predicate (Section 2.2):
// every simulator run and every adversary-constructed computation in this
// library is validated against it, so "admissible timed computation" is a
// checked property, not an assumption.

#include <optional>
#include <string>

#include "model/timed_computation.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct AdmissibilityReport {
  bool admissible = true;
  // Human-readable description of the first violation found.
  std::string violation;

  explicit operator bool() const noexcept { return admissible; }
};

// Checks both structural validity (TimedComputation::structural_error) and
// the timing-model constraint:
//  * per-process consecutive compute-step gaps (with time 0 as the virtual
//    predecessor of each process's first step);
//  * message delays (MPM traces only).
//
// For finite traces the "infinitely many steps / eventually delivered"
// liveness clauses are interpreted over the active prefix: messages sent
// before all port processes idle need not be delivered within the trace
// (the trace is a prefix of an infinite admissible computation), but any
// recorded delivery must respect the delay bounds.
AdmissibilityReport check_admissible(const TimedComputation& tc,
                                     const TimingConstraints& constraints);

}  // namespace sesp
