#pragma once

// Machine checker for the paper's admissibility predicate (Section 2.2):
// every simulator run and every adversary-constructed computation in this
// library is validated against it, so "admissible timed computation" is a
// checked property, not an assumption.

#include <optional>
#include <string>

#include "model/timed_computation.hpp"
#include "timing/constraints.hpp"

namespace sesp {

// Exact location of the first admissibility violation: the trace step at
// which the computation leaves the admissible space, the responsible
// process, the model time, and (for delay violations) the message. This is
// the detection half of the fault-tolerance contract: an injected timing
// violation or duplicated delivery is localized to the step, not just
// narrated.
struct ViolationSite {
  std::size_t step_index = 0;
  ProcessId process = kNetworkProcess;
  Time time;
  MsgId message = kNoMsg;
};

struct AdmissibilityReport {
  bool admissible = true;
  // Human-readable description of the first violation found.
  std::string violation;
  // Machine-readable location of that violation, when it maps to a step
  // (gap and delay violations do; invalid constraints do not).
  std::optional<ViolationSite> site;

  explicit operator bool() const noexcept { return admissible; }
};

// Checks both structural validity (TimedComputation::structural_error) and
// the timing-model constraint:
//  * per-process consecutive compute-step gaps (with time 0 as the virtual
//    predecessor of each process's first step);
//  * message delays (MPM traces only).
//
// For finite traces the "infinitely many steps / eventually delivered"
// liveness clauses are interpreted over the active prefix: messages sent
// before all port processes idle need not be delivered within the trace
// (the trace is a prefix of an infinite admissible computation), but any
// recorded delivery must respect the delay bounds.
AdmissibilityReport check_admissible(const TimedComputation& tc,
                                     const TimingConstraints& constraints);

}  // namespace sesp
