#pragma once

// Machine checker for the paper's admissibility predicate (Section 2.2):
// every simulator run and every adversary-constructed computation in this
// library is validated against it, so "admissible timed computation" is a
// checked property, not an assumption.

#include <optional>
#include <string>
#include <vector>

#include "model/timed_computation.hpp"
#include "timing/constraints.hpp"

namespace sesp {

// Exact location of the first admissibility violation: the trace step at
// which the computation leaves the admissible space, the responsible
// process, the model time, and (for delay violations) the message. This is
// the detection half of the fault-tolerance contract: an injected timing
// violation or duplicated delivery is localized to the step, not just
// narrated.
struct ViolationSite {
  std::size_t step_index = 0;
  ProcessId process = kNetworkProcess;
  Time time;
  MsgId message = kNoMsg;
};

struct AdmissibilityReport {
  bool admissible = true;
  // Human-readable description of the first violation found.
  std::string violation;
  // Machine-readable location of that violation, when it maps to a step
  // (gap and delay violations do; invalid constraints do not).
  std::optional<ViolationSite> site;

  explicit operator bool() const noexcept { return admissible; }
};

// Single-pass admissibility prover (docs/performance.md "Verifier hot
// path"). Feed every step in trace order, then call messages(); proven()
// is true only when every check of check_admissible — the structural
// battery, the per-model step-gap bounds, the message-delay bounds —
// provably holds. "Not proven" does NOT mean inadmissible: callers fall
// back to check_admissible, whose error selection and wording are the
// contract, so reports stay byte-identical. step() is cheap enough to fuse
// into another scan of the trace (the verifier folds it into its counting
// pass, making the admissible case — every grid-sweep trace, since sweeps
// inject no timing faults — a single pass over the steps).
class AdmissibilityScan {
 public:
  AdmissibilityScan(const TimedComputation& tc, const TimingConstraints& c);

  // Feed the next step of the trace (steps must arrive in trace order,
  // starting at index 0). The message checks ride along this scan in a hot
  // sliding window instead of a separate cold pass over the message log:
  //
  //  * trace messages are appended in send order, so a cursor consumes the
  //    contiguous run of messages whose send_step is the current index
  //    (tallying how many claim to be delivered/received);
  //  * a delivery step at index i "vouches" for its message m exactly when
  //    m.deliver_step == i; the vouching step is m's delivery by
  //    construction, and the send time needed for the delay bound sits a
  //    bounded-delay window behind the scan cursor, still in cache;
  //  * a vouched delivery queues m on its recipient, and the recipient's
  //    next compute step vouches for m's receive_step the same way
  //    (mirroring how the simulators assign receive steps).
  //
  // messages() then just compares vouch counts with the tallies: a message
  // the original per-message checks would reject is never vouched, so any
  // mismatch (or an unconsumed cursor) degrades to "not proven" and the
  // caller's precise fallback decides.
  //
  // Returns the step gap (st.time minus the process's previous compute
  // time, virtual time-0 predecessor) when this is a compute step the scan
  // processed, else nullptr — a fused caller tracking its own gap measure
  // (the verifier's gamma) can reuse the subtraction instead of repeating
  // it. The pointer is valid until the next step() call. After the scan
  // gives up (proven() false) it returns nullptr, so callers keep their own
  // predecessor times and fall back to subtracting when no gap is offered.
  const Duration* step(const StepRecord& st) {
    const std::size_t i = idx_++;
    if (!ok_) return nullptr;
    if (st.time < prev_time_) {
      ok_ = false;
      return nullptr;
    }
    prev_time_ = st.time;

    const auto& msgs = tc_.messages();
    while (next_send_ < msgs.size() && msgs[next_send_].send_step == i) {
      delivered_total_ += msgs[next_send_].delivered() ? 1 : 0;
      received_total_ += msgs[next_send_].received() ? 1 : 0;
      ++next_send_;
    }

    if (st.kind == StepKind::kDeliver) {
      const MsgId id = st.delivered;
      // id < next_send_ also proves m.send_step <= i, i.e. sent-before-
      // delivered; anything else (including a stray delivery step no
      // message points back to) stays unproven.
      if (id < 0 || static_cast<std::size_t>(id) >= next_send_) {
        ok_ = false;
        return nullptr;
      }
      const MessageRecord& m = msgs[static_cast<std::size_t>(id)];
      if (m.deliver_step != i) {
        ok_ = false;
        return nullptr;
      }
      ++matched_deliver_;
      const Duration delay = st.time - tc_.steps()[m.send_step].time;
      if (delay_exact_ ? delay != delay_hi_
                       : (delay < delay_lo_ || delay_hi_ < delay)) {
        ok_ = false;
        return nullptr;
      }
      if (m.recipient >= 0 && m.recipient < num_processes_)
        pending_[static_cast<std::size_t>(m.recipient)].push_back(id);
      return nullptr;
    }

    if (!st.is_compute()) return nullptr;
    if (st.process < 0 || st.process >= num_processes_) {
      ok_ = false;
      return nullptr;
    }
    const auto p = static_cast<std::size_t>(st.process);
    if (idle_[p] && !st.idle_after) {
      ok_ = false;
      return nullptr;
    }
    if (st.idle_after) idle_[p] = true;

    auto& pend = pending_[p];
    if (!pend.empty()) {
      for (const MsgId id : pend)
        matched_receive_ +=
            msgs[static_cast<std::size_t>(id)].receive_step == i ? 1 : 0;
      pend.clear();
    }

    gap_ = st.time - last_[p];
    last_[p] = st.time;
    if (!no_gap_bounds_) {
      switch (model_) {
        case TimingModel::kSynchronous:
          if (gap_ != c_.c2) ok_ = false;
          break;
        case TimingModel::kPeriodic:
          if (gap_ != c_.periods[p]) ok_ = false;
          break;
        case TimingModel::kSemiSynchronous:
          if (gap_ < c_.c1 || c_.c2 < gap_) ok_ = false;
          break;
        case TimingModel::kSporadic:
          if (gap_ < c_.c1) ok_ = false;
          break;
        case TimingModel::kAsynchronous:
          if (!gap_.is_positive() || c_.c2 < gap_) ok_ = false;
          break;
      }
    }
    return &gap_;
  }

  // Settles the message checks; call once, after every step was fed.
  void messages();

  // True only when every admissibility check provably holds. Callers must
  // additionally run c.validate() before trusting a proven scan —
  // check_admissible rejects invalid constraints first, and this scan does
  // not replicate that.
  bool proven() const noexcept { return ok_; }

 private:
  const TimedComputation& tc_;
  const TimingConstraints& c_;
  TimingModel model_;
  std::int32_t num_processes_;
  bool no_gap_bounds_ = false;
  bool ok_ = true;
  Time prev_time_;
  // Byte flags, not vector<bool>: one predicted load/store per step instead
  // of a read-modify-write bit mask in the hottest loop of the verifier.
  std::vector<char> idle_;
  std::vector<Time> last_;
  Duration gap_;  // gap of the last compute step; see step()

  // Message-check state (see step()).
  std::size_t idx_ = 0;
  std::size_t next_send_ = 0;
  std::int64_t delivered_total_ = 0;
  std::int64_t received_total_ = 0;
  std::int64_t matched_deliver_ = 0;
  std::int64_t matched_receive_ = 0;
  std::vector<std::vector<MsgId>> pending_;
  bool delay_exact_ = false;
  Duration delay_lo_;
  Duration delay_hi_;
};

// Checks both structural validity (TimedComputation::structural_error) and
// the timing-model constraint:
//  * per-process consecutive compute-step gaps (with time 0 as the virtual
//    predecessor of each process's first step);
//  * message delays (MPM traces only).
//
// For finite traces the "infinitely many steps / eventually delivered"
// liveness clauses are interpreted over the active prefix: messages sent
// before all port processes idle need not be delivered within the trace
// (the trace is a prefix of an infinite admissible computation), but any
// recorded delivery must respect the delay bounds.
AdmissibilityReport check_admissible(const TimedComputation& tc,
                                     const TimingConstraints& constraints);

}  // namespace sesp
