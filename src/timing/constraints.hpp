#pragma once

// The five timing models of Section 2.2 and their parameters. A
// TimingConstraints value fully determines which timed computations are
// admissible; `admissibility.hpp` implements the predicate.
//
// Conventions carried over from the paper:
//  * All steps, including each process's first, obey the constraint starting
//    from time 0 (the paper's conversion note (3)): time 0 acts as a virtual
//    predecessor step.
//  * In the periodic model each process p_i has an unknown-to-the-algorithm
//    but fixed period c_i; here `periods[p]` records the adversary's choice
//    so the checker can verify exact periodicity.
//  * The asynchronous model differs by substrate, following the sources the
//    paper compares against: in shared memory ([2]) there are no bounds at
//    all and time is measured in rounds; in message passing ([4]) c1 = d1 = 0
//    while c2 and d2 are finite.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "util/ratio.hpp"

namespace sesp {

enum class TimingModel : std::uint8_t {
  kSynchronous,
  kPeriodic,
  kSemiSynchronous,
  kSporadic,
  kAsynchronous,
};

std::string to_string(TimingModel model);

struct TimingConstraints {
  TimingModel model = TimingModel::kSynchronous;

  // Lower / upper bound on the time between consecutive steps of a process.
  // Interpretation by model:
  //   synchronous:      gap == c2 exactly (c1 ignored)
  //   periodic:         gap == periods[p] exactly, per process
  //   semi-synchronous: gap in [c1, c2], c1 > 0
  //   sporadic:         gap >= c1, no upper bound (c2 ignored)
  //   asynchronous SMM: unconstrained (both ignored)
  //   asynchronous MPM: gap in (0, c2]  (c1 == 0 per [4])
  Duration c1 = 1;
  Duration c2 = 1;

  // Message delay bounds (MPM only). Interpretation by model:
  //   synchronous:      delay == d2 exactly
  //   periodic:         delay in [0, d2]
  //   semi-synchronous: delay in [0, d2]
  //   sporadic:         delay in [d1, d2]
  //   asynchronous MPM: delay in [0, d2]
  Duration d1 = 0;
  Duration d2 = 1;

  // Periodic model only: the adversary-chosen per-process period c_i,
  // indexed by ProcessId, covering every non-network process (port processes
  // and, in the SMM, relay processes).
  std::vector<Duration> periods;

  // u = d2 - d1, the message-delay uncertainty of the sporadic model.
  Duration delay_uncertainty() const { return d2 - d1; }

  // Largest / smallest per-process period (periodic model). Terminates if
  // periods is empty.
  Duration c_max() const;
  Duration c_min() const;

  // Validates internal consistency (e.g. c1 <= c2, d1 <= d2, c1 > 0 for
  // semi-synchronous/sporadic, positive periods). Returns an error
  // description, or nullopt if the parameters are a valid instance of the
  // model.
  std::optional<std::string> validate() const;

  // Convenience factories mirroring the models' free parameters.
  static TimingConstraints synchronous(Duration c2, Duration d2 = 1);
  static TimingConstraints periodic(std::vector<Duration> periods,
                                    Duration d2 = 1);
  static TimingConstraints semi_synchronous(Duration c1, Duration c2,
                                            Duration d2 = 1);
  static TimingConstraints sporadic(Duration c1, Duration d1, Duration d2);
  static TimingConstraints asynchronous(Duration c2 = 1, Duration d2 = 1);
};

}  // namespace sesp
