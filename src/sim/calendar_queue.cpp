#include "sim/calendar_queue.hpp"

#include <utility>

namespace sesp {

CalendarQueue::CalendarQueue() { index_rehash(64); }

// --- hash index ------------------------------------------------------------

std::uint32_t CalendarQueue::find_slot(std::uint64_t word) const {
  std::size_t probe = (word * 0x9e3779b97f4a7c15ULL) >> 1;
  probe ^= probe >> 29;
  std::size_t i = probe & index_mask_;
  while (true) {
    if (index_state_[i] == kEmpty) return kNone;
    if (index_state_[i] == kFull && index_keys_[i] == word)
      return static_cast<std::uint32_t>(i);
    i = (i + 1) & index_mask_;
  }
}

void CalendarQueue::index_insert(std::uint64_t word, std::uint32_t bucket) {
  if ((index_used_ + 1) * 4 > index_keys_.size() * 3)
    index_rehash(index_keys_.size() * 2);
  std::size_t probe = (word * 0x9e3779b97f4a7c15ULL) >> 1;
  probe ^= probe >> 29;
  std::size_t i = probe & index_mask_;
  while (index_state_[i] == kFull) i = (i + 1) & index_mask_;
  if (index_state_[i] == kEmpty) ++index_used_;  // tombstone reuse keeps used_
  index_keys_[i] = word;
  index_vals_[i] = bucket;
  index_state_[i] = kFull;
  ++index_live_;
}

void CalendarQueue::index_erase(std::uint64_t word) {
  const std::uint32_t slot = find_slot(word);
  if (slot == kNone) return;
  index_state_[slot] = kTomb;
  --index_live_;
}

void CalendarQueue::index_rehash(std::size_t capacity) {
  while (capacity < (index_live_ + 1) * 2) capacity *= 2;
  std::vector<std::uint64_t> keys(capacity, 0);
  std::vector<std::uint32_t> vals(capacity, 0);
  std::vector<std::uint8_t> state(capacity, kEmpty);
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < index_keys_.size(); ++i) {
    if (index_state_[i] != kFull) continue;
    std::size_t probe = (index_keys_[i] * 0x9e3779b97f4a7c15ULL) >> 1;
    probe ^= probe >> 29;
    std::size_t j = probe & mask;
    while (state[j] == kFull) j = (j + 1) & mask;
    keys[j] = index_keys_[i];
    vals[j] = index_vals_[i];
    state[j] = kFull;
  }
  index_keys_ = std::move(keys);
  index_vals_ = std::move(vals);
  index_state_ = std::move(state);
  index_mask_ = mask;
  index_used_ = index_live_;
}

// --- bucket heap -----------------------------------------------------------

void CalendarQueue::heap_push(std::uint32_t idx) {
  heap_.push_back(idx);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

std::uint32_t CalendarQueue::heap_pop() {
  const std::uint32_t top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    std::size_t best = i;
    if (l < n && heap_less(heap_[l], heap_[best])) best = l;
    if (r < n && heap_less(heap_[r], heap_[best])) best = r;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

// --- buckets ---------------------------------------------------------------

CalendarQueue::Bucket& CalendarQueue::bucket_for(const Time& t) {
  const PackedRatio key = intern_.pack(t);
  // Fast path: the bucket being drained. Dense timelines land here.
  if (current_ != kNone && arena_[current_].key == key)
    return arena_[current_];
  // Second fast path: the bucket of the previous push (broadcast fan-out).
  if (last_push_ != kNone && arena_[last_push_].key == key)
    return arena_[last_push_];
  const std::uint32_t slot = find_slot(key.word());
  if (slot != kNone) {
    last_push_ = index_vals_[slot];
    return arena_[last_push_];
  }

  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    ++reused_;
  } else {
    idx = static_cast<std::uint32_t>(arena_.size());
    arena_.emplace_back();
  }
  Bucket& b = arena_[idx];
  b.key = key;
  b.time = t;
  index_insert(key.word(), idx);
  heap_push(idx);
  current_is_min_ = false;  // the new bucket may precede the current one
  last_push_ = idx;
  return b;
}

void CalendarQueue::release(std::uint32_t idx) {
  Bucket& b = arena_[idx];
  index_erase(b.key.word());
  b.computes.clear();  // capacity kept: arena reuse-after-drain
  b.delivers.clear();
  b.compute_head = 0;
  b.deliver_head = 0;
  if (last_push_ == idx) last_push_ = kNone;
  free_.push_back(idx);
}

void CalendarQueue::settle_current() {
  if (current_ == kNone) {
    current_ = heap_pop();
  } else if (current_is_min_) {
    return;  // no bucket was created since the last settle
  } else if (!heap_.empty() &&
             intern_.less(arena_[heap_.front()].key, arena_[current_].key)) {
    // An event was pushed before the time being drained (possible only for
    // exotic delay strategies); fall back to heap order.
    heap_push(current_);
    current_ = heap_pop();
  }
  current_is_min_ = true;
}

// --- pop / peek ------------------------------------------------------------

bool CalendarQueue::pop(Popped& out) {
  if (size_ == 0) return false;
  settle_current();
  Bucket& b = arena_[current_];
  out.time = b.time;
  if (b.compute_head < b.computes.size()) {
    out.lane = Lane::kCompute;
    out.process = b.computes[b.compute_head++];
    out.message = kNoMsg;
  } else {
    const Delivery& d = b.delivers[b.deliver_head++];
    out.lane = Lane::kDeliver;
    out.process = d.recipient;
    out.message = d.message;
  }
  --size_;
  if (b.drained()) {
    release(current_);
    current_ = kNone;
  }
  return true;
}

CalendarQueue::Lane CalendarQueue::peek_lane() {
  settle_current();
  const Bucket& b = arena_[current_];
  return b.compute_head < b.computes.size() ? Lane::kCompute : Lane::kDeliver;
}

}  // namespace sesp
