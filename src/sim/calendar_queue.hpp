#pragma once

// Bucketed calendar queue keyed on exact event time — the event queue of the
// rewritten simulator cores (docs/performance.md "Calendar queue").
//
// The Table-1 workloads put many events on few distinct timestamps (periodic
// grids, zero-gap livelocks cut by the no-progress watchdog), which is the
// worst case for a comparison heap: every push/pop pays log(size) exact-
// rational compares to rediscover an order that is mostly ties. This queue
// stores one bucket per DISTINCT exact time instead:
//
//   * a bucket holds two FIFO lanes — compute events, then delivery events —
//     matching the simulators' tie-break (compute steps before deliveries at
//     equal times, FIFO within a lane; FIFO falls out of append order, no
//     sequence numbers needed),
//   * buckets are found by an open-addressing hash on the PackedRatio word
//     of their time (one integer probe in the common case), with the bucket
//     of the time currently being drained checked first — a same-time push,
//     the dominant operation under dense timelines, touches neither the
//     hash nor the heap,
//   * a comparison MIN-HEAP over the buckets (one entry per distinct time,
//     exact Ratio order) decides which bucket drains next. Under
//     pathological skew — every event on its own timestamp, power-law gaps,
//     denominator blowups — the structure degrades gracefully to exactly
//     that comparison heap, paying one hash probe over the classic design.
//
// Drained buckets are released into a free list with their lane capacity
// intact (arena reuse-after-drain), so a steady-state run allocates
// nothing. Pop order is bit-for-bit the order the old
// std::priority_queue<Event> produced; sim_core_equiv_test and the golden
// corpus pin this.

#include <cstdint>
#include <vector>

#include "model/ids.hpp"
#include "util/packed_ratio.hpp"
#include "util/ratio.hpp"

namespace sesp {

class CalendarQueue {
 public:
  enum class Lane : std::uint8_t { kCompute = 0, kDeliver = 1 };

  struct Popped {
    Time time;
    Lane lane = Lane::kCompute;
    ProcessId process = 0;
    MsgId message = kNoMsg;
  };

  CalendarQueue();

  void push_compute(const Time& t, ProcessId p) {
    bucket_for(t).computes.push_back(p);
    ++size_;
  }
  void push_deliver(const Time& t, ProcessId recipient, MsgId m) {
    Bucket& b = bucket_for(t);
    b.delivers.push_back(Delivery{m, recipient});
    ++size_;
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  // Removes the globally next event: earliest exact time; computes before
  // delivers at equal time; FIFO within a lane. False when empty.
  bool pop(Popped& out);

  // Lane of the event the next pop would return (without popping). Only
  // valid when !empty().
  Lane peek_lane();

  // --- introspection (tests, docs) ------------------------------------
  std::size_t distinct_times() const noexcept {
    return heap_.size() + (current_ != kNone ? 1 : 0);
  }
  std::size_t buckets_allocated() const noexcept { return arena_.size(); }
  std::int64_t buckets_reused() const noexcept { return reused_; }
  std::size_t interned_times() const noexcept { return intern_.pool_size(); }

 private:
  struct Delivery {
    MsgId message;
    ProcessId recipient;
  };

  struct Bucket {
    PackedRatio key;
    Time time;
    std::vector<ProcessId> computes;
    std::vector<Delivery> delivers;
    std::uint32_t compute_head = 0;
    std::uint32_t deliver_head = 0;

    bool drained() const noexcept {
      return compute_head == computes.size() &&
             deliver_head == delivers.size();
    }
  };

  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  Bucket& bucket_for(const Time& t);
  // Makes current_ the minimum-time non-drained bucket. Pre: size_ > 0.
  void settle_current();
  void release(std::uint32_t idx);

  // Min-heap over bucket indices ordered by exact bucket time.
  void heap_push(std::uint32_t idx);
  std::uint32_t heap_pop();
  bool heap_less(std::uint32_t a, std::uint32_t b) const {
    return intern_.less(arena_[a].key, arena_[b].key);
  }

  // Open-addressing index: PackedRatio word -> bucket. Tombstones from
  // released buckets are purged by periodic rehash.
  std::uint32_t find_slot(std::uint64_t word) const;
  void index_insert(std::uint64_t word, std::uint32_t bucket);
  void index_erase(std::uint64_t word);
  void index_rehash(std::size_t capacity);

  RatioIntern intern_;
  std::vector<Bucket> arena_;
  std::vector<std::uint32_t> free_;
  std::vector<std::uint32_t> heap_;
  std::uint32_t current_ = kNone;
  // Bucket the last push landed in (kNone until the first push, and reset
  // when that bucket drains). A broadcast pushes one delivery per recipient
  // at the same future time, so checking this bucket first turns all but
  // the first of those pushes into a single key compare, no hash probe.
  std::uint32_t last_push_ = kNone;
  // True while current_ is known to be the minimum over all live buckets.
  // Bucket times never change, so the only event that can dethrone the
  // current bucket is a heap_push of a new one — settle_current() is a
  // single predicted branch on every other pop/peek.
  bool current_is_min_ = false;
  std::size_t size_ = 0;
  std::int64_t reused_ = 0;

  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };
  std::vector<std::uint64_t> index_keys_;
  std::vector<std::uint32_t> index_vals_;
  std::vector<std::uint8_t> index_state_;
  std::size_t index_mask_ = 0;
  std::size_t index_used_ = 0;  // full + tombstones
  std::size_t index_live_ = 0;  // full only
};

}  // namespace sesp
