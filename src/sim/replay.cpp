#include "sim/replay.hpp"

#include <map>
#include <sstream>
#include <vector>

#include "adversary/schedulers.hpp"
#include "adversary/step_schedulers.hpp"
#include "mpm/mpm_simulator.hpp"
#include "smm/smm_simulator.hpp"

namespace sesp {

namespace {

ScriptedScheduler scheduler_from(const TimedComputation& trace,
                                 const Duration& tail_gap) {
  std::map<ProcessId, std::vector<Time>> script;
  for (const StepRecord& st : trace.steps())
    if (st.is_compute()) script[st.process].push_back(st.time);
  return ScriptedScheduler(std::move(script), tail_gap);
}

// Replays each message's recorded delay, keyed by MsgId: as long as the
// runs agree, message ids are assigned in the same order.
class RecordedDelay final : public DelayStrategy {
 public:
  explicit RecordedDelay(const TimedComputation& trace) {
    for (const MessageRecord& m : trace.messages()) {
      if (!m.delivered()) continue;
      delays_[m.id] = trace.steps()[m.deliver_step].time -
                      trace.steps()[m.send_step].time;
    }
  }

  Duration delay(ProcessId, ProcessId, const Time&, MsgId id) override {
    const auto it = delays_.find(id);
    // Messages never delivered in the recording get pushed past any
    // plausible termination so the replay doesn't deliver them either.
    return it == delays_.end() ? Duration(1'000'000'000) : it->second;
  }

 private:
  std::map<MsgId, Duration> delays_;
};

std::string describe(const StepRecord& st) { return st.to_string(); }

ReplayReport compare(const TimedComputation& expected,
                     const TimedComputation& actual) {
  ReplayReport report;
  const auto& a = expected.steps();
  const auto& b = actual.steps();
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    const bool same = a[i].kind == b[i].kind && a[i].process == b[i].process &&
                      a[i].time == b[i].time && a[i].port == b[i].port &&
                      a[i].var == b[i].var &&
                      a[i].idle_after == b[i].idle_after &&
                      a[i].value_before_digest == b[i].value_before_digest &&
                      a[i].value_after_digest == b[i].value_after_digest;
    if (!same) {
      report.divergence = i;
      std::ostringstream os;
      os << "step " << i << " differs: recorded " << describe(a[i])
         << " vs replayed " << describe(b[i]);
      report.detail = os.str();
      return report;
    }
  }
  if (a.size() != b.size()) {
    report.divergence = common;
    report.detail = "length mismatch: recorded " + std::to_string(a.size()) +
                    " steps, replayed " + std::to_string(b.size());
    return report;
  }
  report.match = true;
  report.divergence = common;
  return report;
}

}  // namespace

ReplayReport replay_smm(const TimedComputation& trace, const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const SmmAlgorithmFactory& factory) {
  ScriptedScheduler scheduler = scheduler_from(trace, Duration(1'000'000'000));
  SmmSimulator sim(spec, constraints, factory, scheduler);
  const SmmRunResult run = sim.run();
  return compare(trace, run.trace);
}

ReplayReport replay_mpm(const TimedComputation& trace, const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const MpmAlgorithmFactory& factory) {
  ScriptedScheduler scheduler = scheduler_from(trace, Duration(1'000'000'000));
  RecordedDelay delays(trace);
  MpmSimulator sim(spec, constraints, factory, scheduler, delays);
  const MpmRunResult run = sim.run();
  return compare(trace, run.trace);
}

}  // namespace sesp
