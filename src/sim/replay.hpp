#pragma once

// Differential replay: re-execute a recorded trace's exact schedule (step
// times extracted per process, message delays per message) against an
// algorithm factory and compare the resulting computation step by step.
// Validates three things at once:
//
//  * simulator determinism — the same schedule yields the same computation;
//  * trace integrity — a transported/parsed trace still corresponds to an
//    actual execution of the named algorithm;
//  * algorithm determinism — local states depend only on the documented
//    inputs (the paper's step semantics).

#include <cstdint>
#include <string>

#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "mpm/algorithm.hpp"
#include "smm/algorithm.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct ReplayReport {
  bool match = false;
  // First differing step index (== steps checked when a run is a prefix of
  // the other), and a human-readable description.
  std::size_t divergence = 0;
  std::string detail;
};

ReplayReport replay_smm(const TimedComputation& trace, const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const SmmAlgorithmFactory& factory);

ReplayReport replay_mpm(const TimedComputation& trace, const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const MpmAlgorithmFactory& factory);

}  // namespace sesp
