#include "sim/experiment.hpp"

#include <deque>
#include <memory>
#include <sstream>
#include <vector>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "exec/thread_pool.hpp"

namespace sesp {

namespace {

// One observation shard per sweep task, merged in task order after the
// barrier — the deque pins the shards (Observer points into them).
std::deque<obs::ObservationShard> make_shards(obs::Observer* parent,
                                              std::size_t count) {
  std::deque<obs::ObservationShard> shards;
  for (std::size_t i = 0; i < count; ++i) shards.emplace_back(parent);
  return shards;
}

void fold(WorstCase& wc, const Verdict& v, bool completed, bool hit_limit,
          const std::optional<SimError>& error, const std::string& label) {
  ++wc.runs;
  if (!v.admissible || !v.solves || hit_limit || error) {
    wc.all_solved = wc.all_solved && v.solves && !hit_limit && !error;
    wc.all_admissible = wc.all_admissible && v.admissible;
    if (wc.first_failure.empty()) {
      wc.first_failure = label + ": ";
      if (!v.admissible)
        wc.first_failure += "inadmissible (" + v.admissibility_violation + ")";
      else if (error)
        wc.first_failure += error->to_string();
      else if (hit_limit)
        wc.first_failure += "hit run limit";
      else
        wc.first_failure +=
            "solved=false (sessions=" + std::to_string(v.sessions) + ")";
    }
  }
  // Limit hits are recorded on their own channel: a run that trips a limit
  // must name the adversary and the limit even when another run already
  // claimed first_failure (or succeeds later).
  if (hit_limit && wc.first_limit_hit.empty())
    wc.first_limit_hit =
        label + ": " + (error ? error->to_string() : "hit run limit");
  if (wc.runs == 1 || v.sessions < wc.min_sessions)
    wc.min_sessions = v.sessions;
  if (completed && v.termination_time &&
      wc.max_termination < *v.termination_time)
    wc.max_termination = *v.termination_time;
  const std::int64_t rounds = v.rounds.rounds_ceiling();
  if (wc.max_rounds < rounds) wc.max_rounds = rounds;
  if (v.gamma && wc.max_gamma < *v.gamma) wc.max_gamma = *v.gamma;
}

}  // namespace

MpmOutcome run_mpm_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const MpmAlgorithmFactory& factory,
                        StepScheduler& scheduler, DelayStrategy& delays,
                        const MpmRunLimits& limits, FaultInjector* faults,
                        obs::Observer* observer) {
  MpmSimulator sim(spec, constraints, factory, scheduler, delays, faults,
                   observer);
  MpmOutcome out{sim.run(limits), Verdict{}};
  out.verdict = verify(out.run.trace, spec, constraints, observer);
  return out;
}

SmmOutcome run_smm_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const SmmAlgorithmFactory& factory,
                        StepScheduler& scheduler, const SmmRunLimits& limits,
                        FaultInjector* faults, obs::Observer* observer) {
  SmmSimulator sim(spec, constraints, factory, scheduler, faults, observer);
  SmmOutcome out{sim.run(limits), Verdict{}};
  out.verdict = verify(out.run.trace, spec, constraints, observer);
  return out;
}

P2pOutcome run_p2p_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const Topology& topology,
                        const P2pAlgorithmFactory& factory,
                        StepScheduler& scheduler, DelayStrategy& delays,
                        const P2pRunLimits& limits, FaultInjector* faults,
                        obs::Observer* observer) {
  P2pSimulator sim(spec, constraints, topology, factory, scheduler, delays,
                   faults, observer);
  P2pOutcome out{sim.run(limits), Verdict{}};
  out.verdict = verify(out.run.trace, spec, constraints, observer);
  return out;
}

WorstCase mpm_worst_case(const ProblemSpec& spec,
                         const TimingConstraints& constraints,
                         const MpmAlgorithmFactory& factory,
                         std::int32_t random_runs, std::uint64_t seed,
                         const MpmRunLimits& limits) {
  WorstCase wc;
  const std::int32_t n = spec.n;

  struct Adversary {
    std::string label;
    std::unique_ptr<StepScheduler> sched;
    std::unique_ptr<DelayStrategy> delay;
  };
  std::vector<Adversary> family;
  auto add = [&family](std::string label, std::unique_ptr<StepScheduler> s,
                       std::unique_ptr<DelayStrategy> d) {
    family.push_back(Adversary{std::move(label), std::move(s), std::move(d)});
  };

  switch (constraints.model) {
    case TimingModel::kSynchronous:
      add("lockstep",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      break;
    case TimingModel::kPeriodic: {
      add("periods/max-delay",
          std::make_unique<FixedPeriodScheduler>(constraints.periods),
          std::make_unique<FixedDelay>(constraints.d2));
      add("periods/zero-delay",
          std::make_unique<FixedPeriodScheduler>(constraints.periods),
          std::make_unique<FixedDelay>(Duration(0)));
      add("periods/straggler",
          std::make_unique<FixedPeriodScheduler>(constraints.periods),
          std::make_unique<StragglerDelay>(0, Duration(0), constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("periods/random-delay#" + std::to_string(r),
            std::make_unique<FixedPeriodScheduler>(constraints.periods),
            std::make_unique<UniformRandomDelay>(Duration(0), constraints.d2,
                                                 seed + 31 * r + 1));
      break;
    }
    case TimingModel::kSemiSynchronous:
      add("all-slow/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      add("all-fast/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c1),
          std::make_unique<FixedDelay>(constraints.d2));
      add("slow-one/max-delay",
          std::make_unique<SlowOneScheduler>(n, constraints.c1, 0,
                                             constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("random#" + std::to_string(r),
            std::make_unique<UniformGapScheduler>(constraints.c1,
                                                  constraints.c2,
                                                  seed + 77 * r + 3),
            std::make_unique<UniformRandomDelay>(Duration(0), constraints.d2,
                                                 seed + 77 * r + 4));
      break;
    case TimingModel::kSporadic:
      add("all-c1/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c1),
          std::make_unique<FixedDelay>(constraints.d2));
      add("all-c1/min-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c1),
          std::make_unique<FixedDelay>(constraints.d1));
      add("slow-one/max-delay",
          std::make_unique<SlowOneScheduler>(n, constraints.c1, 0,
                                             constraints.c1 * 16),
          std::make_unique<FixedDelay>(constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("bursty#" + std::to_string(r),
            std::make_unique<BurstyScheduler>(constraints.c1, 1, 8, 12,
                                              seed + 13 * r + 5),
            std::make_unique<UniformRandomDelay>(constraints.d1,
                                                 constraints.d2,
                                                 seed + 13 * r + 6));
      break;
    case TimingModel::kAsynchronous:
      add("all-c2/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      add("slow-one/max-delay",
          std::make_unique<SlowOneScheduler>(n, constraints.c2 / 4, 0,
                                             constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("random#" + std::to_string(r),
            std::make_unique<UniformGapScheduler>(constraints.c2 / 16,
                                                  constraints.c2,
                                                  seed + 7 * r + 9),
            std::make_unique<UniformRandomDelay>(Duration(0), constraints.d2,
                                                 seed + 7 * r + 10));
      break;
  }

  // Each adversary owns its schedulers (and their RNG streams), so runs are
  // independent; results land in per-adversary slots and are folded in
  // family order, making the aggregate identical for every job count.
  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards =
      make_shards(parent, family.size());
  std::vector<std::optional<MpmOutcome>> outs(family.size());
  exec::parallel_for_each(family.size(), [&](std::size_t i) {
    Adversary& adv = family[i];
    obs::Observer* const o = shards[i].observer();
    obs::Span span(o ? o->trace : nullptr, "adversary.mpm_worst_case",
                   "adversary",
                   o && o->trace
                       ? obs::args_object({obs::arg_str("label", adv.label)})
                       : std::string());
    outs[i].emplace(run_mpm_once(spec, constraints, factory, *adv.sched,
                                 *adv.delay, limits, nullptr, o));
  });
  for (std::size_t i = 0; i < family.size(); ++i) {
    shards[i].merge_into_parent();
    const MpmOutcome& out = *outs[i];
    wc.any_hit_limit = wc.any_hit_limit || out.run.hit_limit;
    fold(wc, out.verdict, out.run.completed, out.run.hit_limit,
         out.run.error, family[i].label);
  }
  return wc;
}

WorstCase smm_worst_case(const ProblemSpec& spec,
                         const TimingConstraints& constraints,
                         const SmmAlgorithmFactory& factory,
                         std::int32_t random_runs, std::uint64_t seed,
                         const SmmRunLimits& limits) {
  WorstCase wc;
  const std::int32_t total = smm_total_processes(spec.n, spec.b);

  struct Adversary {
    std::string label;
    std::unique_ptr<StepScheduler> sched;
  };
  std::vector<Adversary> family;
  auto add = [&family](std::string label, std::unique_ptr<StepScheduler> s) {
    family.push_back(Adversary{std::move(label), std::move(s)});
  };

  switch (constraints.model) {
    case TimingModel::kSynchronous:
      add("lockstep",
          std::make_unique<FixedPeriodScheduler>(total, constraints.c2));
      break;
    case TimingModel::kPeriodic:
      add("periods",
          std::make_unique<FixedPeriodScheduler>(constraints.periods));
      break;
    case TimingModel::kSemiSynchronous:
      add("all-slow",
          std::make_unique<FixedPeriodScheduler>(total, constraints.c2));
      add("all-fast",
          std::make_unique<FixedPeriodScheduler>(total, constraints.c1));
      add("slow-one", std::make_unique<SlowOneScheduler>(
                          total, constraints.c1, 0, constraints.c2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("random#" + std::to_string(r),
            std::make_unique<UniformGapScheduler>(
                constraints.c1, constraints.c2, seed + 41 * r + 11));
      break;
    case TimingModel::kSporadic:
    case TimingModel::kAsynchronous: {
      const Duration base = constraints.model == TimingModel::kSporadic
                                ? constraints.c1
                                : Duration(1);
      add("all-base", std::make_unique<FixedPeriodScheduler>(total, base));
      add("slow-one",
          std::make_unique<SlowOneScheduler>(total, base, 0, base * 16));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("bursty#" + std::to_string(r),
            std::make_unique<BurstyScheduler>(base, 1, 8, 12,
                                              seed + 59 * r + 13));
      break;
    }
  }

  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards =
      make_shards(parent, family.size());
  std::vector<std::optional<SmmOutcome>> outs(family.size());
  exec::parallel_for_each(family.size(), [&](std::size_t i) {
    Adversary& adv = family[i];
    obs::Observer* const o = shards[i].observer();
    obs::Span span(o ? o->trace : nullptr, "adversary.smm_worst_case",
                   "adversary",
                   o && o->trace
                       ? obs::args_object({obs::arg_str("label", adv.label)})
                       : std::string());
    outs[i].emplace(run_smm_once(spec, constraints, factory, *adv.sched,
                                 limits, nullptr, o));
  });
  for (std::size_t i = 0; i < family.size(); ++i) {
    shards[i].merge_into_parent();
    const SmmOutcome& out = *outs[i];
    wc.any_hit_limit = wc.any_hit_limit || out.run.hit_limit;
    fold(wc, out.verdict, out.run.completed, out.run.hit_limit,
         out.run.error, family[i].label);
  }
  return wc;
}

// --- Degradation sweeps -----------------------------------------------------

namespace {

// The canonical deterministic adversary of each model (its first worst-case
// family member): degradation cells isolate the injected faults, so the
// schedule itself stays fixed and admissible.
std::unique_ptr<StepScheduler> canonical_scheduler(
    const TimingConstraints& constraints, std::int32_t num_processes) {
  switch (constraints.model) {
    case TimingModel::kPeriodic:
      return std::make_unique<FixedPeriodScheduler>(constraints.periods);
    case TimingModel::kSporadic:
      return std::make_unique<FixedPeriodScheduler>(num_processes,
                                                    constraints.c1);
    case TimingModel::kSynchronous:
    case TimingModel::kSemiSynchronous:
      return std::make_unique<FixedPeriodScheduler>(num_processes,
                                                    constraints.c2);
    case TimingModel::kAsynchronous:
      return std::make_unique<FixedPeriodScheduler>(
          num_processes, constraints.c2.is_positive() ? constraints.c2
                                                      : Duration(1));
  }
  return std::make_unique<FixedPeriodScheduler>(num_processes, Duration(1));
}

FaultPlan grid_plan(std::int32_t crashes, std::int32_t percent, bool smm,
                    std::int32_t n, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  for (std::int32_t i = 0; i < crashes && i < n; ++i)
    plan.crashes.push_back(CrashFault{i, 1 + i});
  if (smm)
    plan.writes.corrupt_percent = static_cast<std::uint32_t>(percent);
  else
    plan.messages.drop_percent = static_cast<std::uint32_t>(percent);
  return plan;
}

void fill_cell(DegradationCell& cell, const Verdict& verdict,
               const std::optional<SimError>& error, bool completed,
               const FaultInjector& injector, const ProblemSpec& spec) {
  cell.outcome = classify_outcome(error, verdict);
  cell.sessions = verdict.sessions;
  cell.completed = completed;
  cell.admissible = verdict.admissible;
  cell.injected = static_cast<std::int64_t>(injector.log().size());
  cell.diagnostic = outcome_diagnostic(error, verdict, spec);
}

}  // namespace

std::int32_t DegradationReport::count(RunOutcome outcome) const {
  std::int32_t c = 0;
  for (const DegradationCell& cell : cells)
    if (cell.outcome == outcome) ++c;
  return c;
}

std::string DegradationReport::to_string() const {
  std::ostringstream os;
  os << substrate << " " << algorithm << " degradation:\n";
  for (const DegradationCell& cell : cells) {
    os << "  k=" << cell.crashes << " p=" << cell.fault_percent
       << "%  " << sesp::to_string(cell.outcome)
       << "  sessions=" << cell.sessions
       << (cell.completed ? "  completed" : "  stopped")
       << "  injected=" << cell.injected << "  [" << cell.diagnostic << "]\n";
  }
  return os.str();
}

DegradationReport mpm_degradation(const ProblemSpec& spec,
                                  const TimingConstraints& constraints,
                                  const MpmAlgorithmFactory& factory,
                                  const std::vector<std::int32_t>& crash_counts,
                                  const std::vector<std::int32_t>& loss_percents,
                                  std::uint64_t seed,
                                  const MpmRunLimits& limits) {
  DegradationReport report;
  report.algorithm = factory.name();
  report.substrate = "mpm";
  // Grid cells are fully independent (per-cell injector and scheduler, both
  // seeded by the cell's own (k, p)); the cell list fixes the order.
  struct Cell {
    std::int32_t k;
    std::int32_t p;
  };
  std::vector<Cell> grid;
  for (const std::int32_t k : crash_counts)
    for (const std::int32_t p : loss_percents) grid.push_back(Cell{k, p});
  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards = make_shards(parent, grid.size());
  report.cells.resize(grid.size());
  exec::parallel_for_each(grid.size(), [&](std::size_t i) {
    const std::int32_t k = grid[i].k;
    const std::int32_t p = grid[i].p;
    obs::Observer* const o = shards[i].observer();
    obs::Span span(o ? o->trace : nullptr, "degradation.mpm_cell", "sim",
                   o && o->trace
                       ? obs::args_object({obs::arg_int("crashes", k),
                                           obs::arg_int("percent", p)})
                       : std::string());
    FaultInjector injector(grid_plan(
        k, p, false, spec.n, seed + 131 * static_cast<std::uint64_t>(k) +
                                 static_cast<std::uint64_t>(p)));
    auto sched = canonical_scheduler(constraints, spec.n);
    FixedDelay delay(constraints.d2);
    const MpmOutcome out = run_mpm_once(spec, constraints, factory, *sched,
                                        delay, limits, &injector, o);
    DegradationCell& cell = report.cells[i];
    cell.crashes = k;
    cell.fault_percent = p;
    fill_cell(cell, out.verdict, out.run.error, out.run.completed, injector,
              spec);
  });
  for (obs::ObservationShard& shard : shards) shard.merge_into_parent();
  return report;
}

DegradationReport smm_degradation(
    const ProblemSpec& spec, const TimingConstraints& constraints,
    const SmmAlgorithmFactory& factory,
    const std::vector<std::int32_t>& crash_counts,
    const std::vector<std::int32_t>& corrupt_percents, std::uint64_t seed,
    const SmmRunLimits& limits) {
  DegradationReport report;
  report.algorithm = factory.name();
  report.substrate = "smm";
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  struct Cell {
    std::int32_t k;
    std::int32_t p;
  };
  std::vector<Cell> grid;
  for (const std::int32_t k : crash_counts)
    for (const std::int32_t p : corrupt_percents) grid.push_back(Cell{k, p});
  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards = make_shards(parent, grid.size());
  report.cells.resize(grid.size());
  exec::parallel_for_each(grid.size(), [&](std::size_t i) {
    const std::int32_t k = grid[i].k;
    const std::int32_t p = grid[i].p;
    obs::Observer* const o = shards[i].observer();
    obs::Span span(o ? o->trace : nullptr, "degradation.smm_cell", "sim",
                   o && o->trace
                       ? obs::args_object({obs::arg_int("crashes", k),
                                           obs::arg_int("percent", p)})
                       : std::string());
    FaultInjector injector(grid_plan(
        k, p, true, spec.n, seed + 131 * static_cast<std::uint64_t>(k) +
                                static_cast<std::uint64_t>(p)));
    auto sched = canonical_scheduler(constraints, total);
    const SmmOutcome out = run_smm_once(spec, constraints, factory, *sched,
                                        limits, &injector, o);
    DegradationCell& cell = report.cells[i];
    cell.crashes = k;
    cell.fault_percent = p;
    fill_cell(cell, out.verdict, out.run.error, out.run.completed, injector,
              spec);
  });
  for (obs::ObservationShard& shard : shards) shard.merge_into_parent();
  return report;
}

// --- Chaos sweeps -----------------------------------------------------------

namespace {

// Per-run classification produced inside the sweep tasks and folded in run
// order afterwards.
struct ChaosRun {
  RunOutcome outcome = RunOutcome::kSolved;
  bool ok = true;
  std::string violation;
  std::string digest;
};

// The bucket invariants of the robustness contract (the sweep form of the
// FaultFuzz expect_contract checks): solved runs are admissible, solve and
// carry no error; degraded runs keep an admissible partial trace; diagnosed
// runs name their inadmissibility or carry a structured error; and an error
// always means the run did not complete.
template <typename RunResult>
ChaosRun classify_chaos(const RunResult& run, const Verdict& v,
                        std::uint64_t seed) {
  ChaosRun r;
  r.outcome = classify_outcome(run.error, v);
  switch (r.outcome) {
    case RunOutcome::kSolved:
      if (!v.admissible || !v.solves || run.error) {
        r.ok = false;
        r.violation = "solved bucket violated";
      }
      break;
    case RunOutcome::kDegraded:
      if (!v.admissible) {
        r.ok = false;
        r.violation = "degraded but inadmissible: " +
                      v.admissibility_violation;
      }
      break;
    case RunOutcome::kDiagnosed:
      if (v.admissible && !run.error) {
        r.ok = false;
        r.violation = "diagnosed without violation or error";
      } else if (!v.admissible && v.admissibility_violation.empty()) {
        r.ok = false;
        r.violation = "inadmissible without a named violation";
      }
      break;
  }
  if (run.error && run.completed) {
    r.ok = false;
    r.violation = "completed run carries an error";
  }
  if (!r.ok) r.violation = "seed " + std::to_string(seed) + ": " + r.violation;
  r.digest = std::to_string(seed) + ":" + sesp::to_string(r.outcome) + ":" +
             std::to_string(v.sessions) + (run.completed ? ":c;" : ":x;");
  return r;
}

void fold_chaos(ChaosReport& report, const std::vector<ChaosRun>& runs) {
  for (const ChaosRun& r : runs) {
    ++report.runs;
    switch (r.outcome) {
      case RunOutcome::kSolved: ++report.solved; break;
      case RunOutcome::kDegraded: ++report.degraded; break;
      case RunOutcome::kDiagnosed: ++report.diagnosed; break;
    }
    if (!r.ok && report.contract_ok) {
      report.contract_ok = false;
      report.first_violation = r.violation;
    }
    report.digest += r.digest;
  }
}

// Schedule bounds for the chaos schedules, robust across timing models
// whose c1/c2 may be unset (zero).
Duration chaos_gap_lo(const TimingConstraints& c) {
  return c.c1.is_positive() ? c.c1 : Duration(1, 2);
}
Duration chaos_gap_hi(const TimingConstraints& c) {
  const Duration lo = chaos_gap_lo(c);
  return lo < c.c2 ? c.c2 : lo * 4;
}

}  // namespace

ChaosReport mpm_chaos_sweep(const ProblemSpec& spec,
                            const TimingConstraints& constraints,
                            const MpmAlgorithmFactory& factory,
                            std::int32_t runs, std::uint64_t seed,
                            const MpmRunLimits& limits) {
  const std::size_t count = runs > 0 ? static_cast<std::size_t>(runs) : 0;
  const Duration lo = chaos_gap_lo(constraints);
  const Duration hi = chaos_gap_hi(constraints);
  const Duration dmax =
      constraints.d2.is_positive() ? constraints.d2 : Duration(4);
  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards = make_shards(parent, count);
  std::vector<ChaosRun> results(count);
  exec::parallel_for_each(count, [&](std::size_t i) {
    const std::uint64_t run_seed = seed + 2654435761ULL * i;
    obs::Observer* const o = shards[i].observer();
    obs::Span span(o ? o->trace : nullptr, "chaos.mpm_run", "sim",
                   o && o->trace ? obs::args_object({obs::arg_int(
                                       "seed",
                                       static_cast<std::int64_t>(run_seed))})
                                 : std::string());
    FaultInjector injector(FaultPlan::random(run_seed, spec.n));
    UniformGapScheduler sched(lo, hi, run_seed + 1);
    UniformRandomDelay delay(Duration(0), dmax, run_seed + 2);
    const MpmOutcome out = run_mpm_once(spec, constraints, factory, sched,
                                        delay, limits, &injector, o);
    results[i] = classify_chaos(out.run, out.verdict, run_seed);
  });
  ChaosReport report;
  for (obs::ObservationShard& shard : shards) shard.merge_into_parent();
  fold_chaos(report, results);
  return report;
}

ChaosReport smm_chaos_sweep(const ProblemSpec& spec,
                            const TimingConstraints& constraints,
                            const SmmAlgorithmFactory& factory,
                            std::int32_t runs, std::uint64_t seed,
                            const SmmRunLimits& limits) {
  const std::size_t count = runs > 0 ? static_cast<std::size_t>(runs) : 0;
  const Duration lo = chaos_gap_lo(constraints);
  const Duration hi = chaos_gap_hi(constraints);
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards = make_shards(parent, count);
  std::vector<ChaosRun> results(count);
  exec::parallel_for_each(count, [&](std::size_t i) {
    const std::uint64_t run_seed = seed + 2654435761ULL * i;
    obs::Observer* const o = shards[i].observer();
    obs::Span span(o ? o->trace : nullptr, "chaos.smm_run", "sim",
                   o && o->trace ? obs::args_object({obs::arg_int(
                                       "seed",
                                       static_cast<std::int64_t>(run_seed))})
                                 : std::string());
    FaultInjector injector(FaultPlan::random(run_seed, total));
    UniformGapScheduler sched(lo, hi, run_seed + 1);
    const SmmOutcome out = run_smm_once(spec, constraints, factory, sched,
                                        limits, &injector, o);
    results[i] = classify_chaos(out.run, out.verdict, run_seed);
  });
  ChaosReport report;
  for (obs::ObservationShard& shard : shards) shard.merge_into_parent();
  fold_chaos(report, results);
  return report;
}

}  // namespace sesp
