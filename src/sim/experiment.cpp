#include "sim/experiment.hpp"

#include <deque>
#include <memory>
#include <sstream>
#include <vector>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "exec/thread_pool.hpp"
#include "model/trace_io.hpp"
#include "recovery/payload.hpp"
#include "recovery/supervisor.hpp"

namespace sesp {

namespace {

// One observation shard per sweep task, merged in task order after the
// barrier — the deque pins the shards (Observer points into them).
std::deque<obs::ObservationShard> make_shards(obs::Observer* parent,
                                              std::size_t count) {
  std::deque<obs::ObservationShard> shards;
  for (std::size_t i = 0; i < count; ++i) shards.emplace_back(parent);
  return shards;
}

// Everything the worst-case aggregate consumes from one run, flattened to
// journal-codable fields: the sweeps fold *decoded* WorstSlots (fresh or
// replayed from a checkpoint journal) so the report is a pure function of
// the payload bytes (docs/robustness.md).
struct WorstSlot {
  std::string label;
  bool completed = false;
  bool hit_limit = false;
  bool admissible = false;
  std::string violation;
  bool solves = false;
  std::int64_t sessions = 0;
  std::optional<Time> termination;
  std::int64_t rounds = 0;
  std::optional<Duration> gamma;
  std::optional<std::string> error;
};

template <typename Outcome>
WorstSlot make_worst_slot(const std::string& label, const Outcome& out) {
  WorstSlot s;
  s.label = label;
  s.completed = out.run.completed;
  s.hit_limit = out.run.hit_limit;
  const Verdict& v = out.verdict;
  s.admissible = v.admissible;
  s.violation = v.admissibility_violation;
  s.solves = v.solves;
  s.sessions = v.sessions;
  s.termination = v.termination_time;
  s.rounds = v.rounds.rounds_ceiling();
  if (v.gamma) s.gamma = *v.gamma;
  if (out.run.error) s.error = out.run.error->to_string();
  return s;
}

std::string encode_worst_slot(const WorstSlot& s) {
  recovery::PayloadWriter w;
  w.put("label", s.label);
  w.put_bool("completed", s.completed);
  w.put_bool("hit_limit", s.hit_limit);
  w.put_bool("admissible", s.admissible);
  w.put("violation", s.violation);
  w.put_bool("solves", s.solves);
  w.put_int("sessions", s.sessions);
  if (s.termination) w.put("termination", ratio_to_text(*s.termination));
  w.put_int("rounds", s.rounds);
  if (s.gamma) w.put("gamma", ratio_to_text(*s.gamma));
  if (s.error) w.put("error", *s.error);
  return w.str();
}

WorstSlot decode_worst_slot(const std::string& payload,
                            const std::string& fallback_label) {
  WorstSlot s;
  s.label = fallback_label;
  if (const auto failure = recovery::decode_task_failure(payload)) {
    // Supervisor-level failure: the schedule itself was fine (admissible),
    // the run just never produced a verdict.
    s.admissible = true;
    s.error = failure->to_string();
    return s;
  }
  const recovery::PayloadReader r(payload);
  s.label = r.get("label", fallback_label);
  s.completed = r.get_bool("completed", false);
  s.hit_limit = r.get_bool("hit_limit", false);
  s.admissible = r.get_bool("admissible", false);
  s.violation = r.get("violation");
  s.solves = r.get_bool("solves", false);
  s.sessions = r.get_int("sessions", 0);
  if (r.has("termination"))
    if (const auto t = ratio_from_text(r.get("termination"))) s.termination = *t;
  s.rounds = r.get_int("rounds", 0);
  if (r.has("gamma"))
    if (const auto g = ratio_from_text(r.get("gamma"))) s.gamma = *g;
  if (r.has("error")) s.error = r.get("error");
  return s;
}

void fold(WorstCase& wc, const WorstSlot& s) {
  ++wc.runs;
  wc.any_hit_limit = wc.any_hit_limit || s.hit_limit;
  if (!s.admissible || !s.solves || s.hit_limit || s.error) {
    wc.all_solved = wc.all_solved && s.solves && !s.hit_limit && !s.error;
    wc.all_admissible = wc.all_admissible && s.admissible;
    if (wc.first_failure.empty()) {
      wc.first_failure = s.label + ": ";
      if (!s.admissible)
        wc.first_failure += "inadmissible (" + s.violation + ")";
      else if (s.error)
        wc.first_failure += *s.error;
      else if (s.hit_limit)
        wc.first_failure += "hit run limit";
      else
        wc.first_failure +=
            "solved=false (sessions=" + std::to_string(s.sessions) + ")";
    }
  }
  // Limit hits are recorded on their own channel: a run that trips a limit
  // must name the adversary and the limit even when another run already
  // claimed first_failure (or succeeds later).
  if (s.hit_limit && wc.first_limit_hit.empty())
    wc.first_limit_hit = s.label + ": " + (s.error ? *s.error : "hit run limit");
  if (wc.runs == 1 || s.sessions < wc.min_sessions)
    wc.min_sessions = s.sessions;
  if (s.completed && s.termination && wc.max_termination < *s.termination)
    wc.max_termination = *s.termination;
  if (wc.max_rounds < s.rounds) wc.max_rounds = s.rounds;
  if (s.gamma && wc.max_gamma < *s.gamma) wc.max_gamma = *s.gamma;
}

}  // namespace

MpmOutcome run_mpm_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const MpmAlgorithmFactory& factory,
                        StepScheduler& scheduler, DelayStrategy& delays,
                        const MpmRunLimits& limits, FaultInjector* faults,
                        obs::Observer* observer) {
  MpmSimulator sim(spec, constraints, factory, scheduler, delays, faults,
                   observer);
  MpmOutcome out{sim.run(limits), Verdict{}};
  out.verdict = verify(out.run.trace, spec, constraints, observer);
  return out;
}

SmmOutcome run_smm_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const SmmAlgorithmFactory& factory,
                        StepScheduler& scheduler, const SmmRunLimits& limits,
                        FaultInjector* faults, obs::Observer* observer) {
  SmmSimulator sim(spec, constraints, factory, scheduler, faults, observer);
  SmmOutcome out{sim.run(limits), Verdict{}};
  out.verdict = verify(out.run.trace, spec, constraints, observer);
  return out;
}

P2pOutcome run_p2p_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const Topology& topology,
                        const P2pAlgorithmFactory& factory,
                        StepScheduler& scheduler, DelayStrategy& delays,
                        const P2pRunLimits& limits, FaultInjector* faults,
                        obs::Observer* observer) {
  P2pSimulator sim(spec, constraints, topology, factory, scheduler, delays,
                   faults, observer);
  P2pOutcome out{sim.run(limits), Verdict{}};
  out.verdict = verify(out.run.trace, spec, constraints, observer);
  return out;
}

WorstCase mpm_worst_case(const ProblemSpec& spec,
                         const TimingConstraints& constraints,
                         const MpmAlgorithmFactory& factory,
                         std::int32_t random_runs, std::uint64_t seed,
                         const MpmRunLimits& limits) {
  WorstCase wc;
  const std::int32_t n = spec.n;

  struct Adversary {
    std::string label;
    std::unique_ptr<StepScheduler> sched;
    std::unique_ptr<DelayStrategy> delay;
  };
  std::vector<Adversary> family;
  auto add = [&family](std::string label, std::unique_ptr<StepScheduler> s,
                       std::unique_ptr<DelayStrategy> d) {
    family.push_back(Adversary{std::move(label), std::move(s), std::move(d)});
  };

  switch (constraints.model) {
    case TimingModel::kSynchronous:
      add("lockstep",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      break;
    case TimingModel::kPeriodic: {
      add("periods/max-delay",
          std::make_unique<FixedPeriodScheduler>(constraints.periods),
          std::make_unique<FixedDelay>(constraints.d2));
      add("periods/zero-delay",
          std::make_unique<FixedPeriodScheduler>(constraints.periods),
          std::make_unique<FixedDelay>(Duration(0)));
      add("periods/straggler",
          std::make_unique<FixedPeriodScheduler>(constraints.periods),
          std::make_unique<StragglerDelay>(0, Duration(0), constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("periods/random-delay#" + std::to_string(r),
            std::make_unique<FixedPeriodScheduler>(constraints.periods),
            std::make_unique<UniformRandomDelay>(Duration(0), constraints.d2,
                                                 seed + 31 * r + 1));
      break;
    }
    case TimingModel::kSemiSynchronous:
      add("all-slow/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      add("all-fast/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c1),
          std::make_unique<FixedDelay>(constraints.d2));
      add("slow-one/max-delay",
          std::make_unique<SlowOneScheduler>(n, constraints.c1, 0,
                                             constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("random#" + std::to_string(r),
            std::make_unique<UniformGapScheduler>(constraints.c1,
                                                  constraints.c2,
                                                  seed + 77 * r + 3),
            std::make_unique<UniformRandomDelay>(Duration(0), constraints.d2,
                                                 seed + 77 * r + 4));
      break;
    case TimingModel::kSporadic:
      add("all-c1/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c1),
          std::make_unique<FixedDelay>(constraints.d2));
      add("all-c1/min-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c1),
          std::make_unique<FixedDelay>(constraints.d1));
      add("slow-one/max-delay",
          std::make_unique<SlowOneScheduler>(n, constraints.c1, 0,
                                             constraints.c1 * 16),
          std::make_unique<FixedDelay>(constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("bursty#" + std::to_string(r),
            std::make_unique<BurstyScheduler>(constraints.c1, 1, 8, 12,
                                              seed + 13 * r + 5),
            std::make_unique<UniformRandomDelay>(constraints.d1,
                                                 constraints.d2,
                                                 seed + 13 * r + 6));
      break;
    case TimingModel::kAsynchronous:
      add("all-c2/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      add("slow-one/max-delay",
          std::make_unique<SlowOneScheduler>(n, constraints.c2 / 4, 0,
                                             constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("random#" + std::to_string(r),
            std::make_unique<UniformGapScheduler>(constraints.c2 / 16,
                                                  constraints.c2,
                                                  seed + 7 * r + 9),
            std::make_unique<UniformRandomDelay>(Duration(0), constraints.d2,
                                                 seed + 7 * r + 10));
      break;
  }

  // Each adversary owns its schedulers (and their RNG streams), so runs are
  // independent; results land in per-adversary slots and are folded in
  // family order, making the aggregate identical for every job count and —
  // via the WorstSlot payload round trip — for every interrupt/resume
  // history when a recovery::Supervisor is installed.
  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards =
      make_shards(parent, family.size());
  recovery::supervised_sweep(
      "mpm_worst_case", family.size(),
      [&](std::size_t i) {
        Adversary& adv = family[i];
        obs::Observer* const o = shards[i].observer();
        obs::ProfileScope exec_scope(o ? o->profiler : nullptr,
                                     obs::ProfilePhase::kExecTask);
        obs::Span span(
            o ? o->trace : nullptr, "adversary.mpm_worst_case", "adversary",
            o && o->trace
                ? obs::args_object({obs::arg_str("label", adv.label)})
                : std::string());
        return encode_worst_slot(make_worst_slot(
            adv.label, run_mpm_once(spec, constraints, factory, *adv.sched,
                                    *adv.delay, limits, nullptr, o)));
      },
      [&](std::size_t i, const std::string& payload) {
        shards[i].merge_into_parent();
        fold(wc, decode_worst_slot(payload, family[i].label));
      });
  return wc;
}

WorstCase smm_worst_case(const ProblemSpec& spec,
                         const TimingConstraints& constraints,
                         const SmmAlgorithmFactory& factory,
                         std::int32_t random_runs, std::uint64_t seed,
                         const SmmRunLimits& limits) {
  WorstCase wc;
  const std::int32_t total = smm_total_processes(spec.n, spec.b);

  struct Adversary {
    std::string label;
    std::unique_ptr<StepScheduler> sched;
  };
  std::vector<Adversary> family;
  auto add = [&family](std::string label, std::unique_ptr<StepScheduler> s) {
    family.push_back(Adversary{std::move(label), std::move(s)});
  };

  switch (constraints.model) {
    case TimingModel::kSynchronous:
      add("lockstep",
          std::make_unique<FixedPeriodScheduler>(total, constraints.c2));
      break;
    case TimingModel::kPeriodic:
      add("periods",
          std::make_unique<FixedPeriodScheduler>(constraints.periods));
      break;
    case TimingModel::kSemiSynchronous:
      add("all-slow",
          std::make_unique<FixedPeriodScheduler>(total, constraints.c2));
      add("all-fast",
          std::make_unique<FixedPeriodScheduler>(total, constraints.c1));
      add("slow-one", std::make_unique<SlowOneScheduler>(
                          total, constraints.c1, 0, constraints.c2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("random#" + std::to_string(r),
            std::make_unique<UniformGapScheduler>(
                constraints.c1, constraints.c2, seed + 41 * r + 11));
      break;
    case TimingModel::kSporadic:
    case TimingModel::kAsynchronous: {
      const Duration base = constraints.model == TimingModel::kSporadic
                                ? constraints.c1
                                : Duration(1);
      add("all-base", std::make_unique<FixedPeriodScheduler>(total, base));
      add("slow-one",
          std::make_unique<SlowOneScheduler>(total, base, 0, base * 16));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("bursty#" + std::to_string(r),
            std::make_unique<BurstyScheduler>(base, 1, 8, 12,
                                              seed + 59 * r + 13));
      break;
    }
  }

  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards =
      make_shards(parent, family.size());
  recovery::supervised_sweep(
      "smm_worst_case", family.size(),
      [&](std::size_t i) {
        Adversary& adv = family[i];
        obs::Observer* const o = shards[i].observer();
        obs::ProfileScope exec_scope(o ? o->profiler : nullptr,
                                     obs::ProfilePhase::kExecTask);
        obs::Span span(
            o ? o->trace : nullptr, "adversary.smm_worst_case", "adversary",
            o && o->trace
                ? obs::args_object({obs::arg_str("label", adv.label)})
                : std::string());
        return encode_worst_slot(make_worst_slot(
            adv.label, run_smm_once(spec, constraints, factory, *adv.sched,
                                    limits, nullptr, o)));
      },
      [&](std::size_t i, const std::string& payload) {
        shards[i].merge_into_parent();
        fold(wc, decode_worst_slot(payload, family[i].label));
      });
  return wc;
}

// --- Degradation sweeps -----------------------------------------------------

namespace {

// The canonical deterministic adversary of each model (its first worst-case
// family member): degradation cells isolate the injected faults, so the
// schedule itself stays fixed and admissible.
std::unique_ptr<StepScheduler> canonical_scheduler(
    const TimingConstraints& constraints, std::int32_t num_processes) {
  switch (constraints.model) {
    case TimingModel::kPeriodic:
      return std::make_unique<FixedPeriodScheduler>(constraints.periods);
    case TimingModel::kSporadic:
      return std::make_unique<FixedPeriodScheduler>(num_processes,
                                                    constraints.c1);
    case TimingModel::kSynchronous:
    case TimingModel::kSemiSynchronous:
      return std::make_unique<FixedPeriodScheduler>(num_processes,
                                                    constraints.c2);
    case TimingModel::kAsynchronous:
      return std::make_unique<FixedPeriodScheduler>(
          num_processes, constraints.c2.is_positive() ? constraints.c2
                                                      : Duration(1));
  }
  return std::make_unique<FixedPeriodScheduler>(num_processes, Duration(1));
}

FaultPlan grid_plan(std::int32_t crashes, std::int32_t percent, bool smm,
                    std::int32_t n, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  for (std::int32_t i = 0; i < crashes && i < n; ++i)
    plan.crashes.push_back(CrashFault{i, 1 + i});
  if (smm)
    plan.writes.corrupt_percent = static_cast<std::uint32_t>(percent);
  else
    plan.messages.drop_percent = static_cast<std::uint32_t>(percent);
  return plan;
}

void fill_cell(DegradationCell& cell, const Verdict& verdict,
               const std::optional<SimError>& error, bool completed,
               const FaultInjector& injector, const ProblemSpec& spec) {
  cell.outcome = classify_outcome(error, verdict);
  cell.sessions = verdict.sessions;
  cell.completed = completed;
  cell.admissible = verdict.admissible;
  cell.injected = static_cast<std::int64_t>(injector.log().size());
  cell.diagnostic = outcome_diagnostic(error, verdict, spec);
}

std::string encode_degradation_cell(const DegradationCell& cell) {
  recovery::PayloadWriter w;
  w.put_int("crashes", cell.crashes);
  w.put_int("fault_percent", cell.fault_percent);
  w.put_int("outcome", static_cast<std::int64_t>(cell.outcome));
  w.put_int("sessions", cell.sessions);
  w.put_bool("completed", cell.completed);
  w.put_bool("admissible", cell.admissible);
  w.put_int("injected", cell.injected);
  w.put("diagnostic", cell.diagnostic);
  return w.str();
}

DegradationCell decode_degradation_cell(const std::string& payload,
                                        std::int32_t crashes,
                                        std::int32_t percent) {
  DegradationCell cell;
  cell.crashes = crashes;
  cell.fault_percent = percent;
  if (const auto failure = recovery::decode_task_failure(payload)) {
    // A cell whose every attempt failed is a diagnosed outcome: structured,
    // named, never silently dropped from the grid.
    cell.outcome = RunOutcome::kDiagnosed;
    cell.diagnostic = failure->to_string();
    return cell;
  }
  const recovery::PayloadReader r(payload);
  cell.crashes = static_cast<std::int32_t>(r.get_int("crashes", crashes));
  cell.fault_percent =
      static_cast<std::int32_t>(r.get_int("fault_percent", percent));
  const std::int64_t outcome = r.get_int("outcome", 0);
  cell.outcome = outcome == 1   ? RunOutcome::kDegraded
                 : outcome == 2 ? RunOutcome::kDiagnosed
                                : RunOutcome::kSolved;
  cell.sessions = r.get_int("sessions", 0);
  cell.completed = r.get_bool("completed", false);
  cell.admissible = r.get_bool("admissible", false);
  cell.injected = r.get_int("injected", 0);
  cell.diagnostic = r.get("diagnostic");
  return cell;
}

}  // namespace

std::int32_t DegradationReport::count(RunOutcome outcome) const {
  std::int32_t c = 0;
  for (const DegradationCell& cell : cells)
    if (cell.outcome == outcome) ++c;
  return c;
}

std::string DegradationReport::to_string() const {
  std::ostringstream os;
  os << substrate << " " << algorithm << " degradation:\n";
  for (const DegradationCell& cell : cells) {
    os << "  k=" << cell.crashes << " p=" << cell.fault_percent
       << "%  " << sesp::to_string(cell.outcome)
       << "  sessions=" << cell.sessions
       << (cell.completed ? "  completed" : "  stopped")
       << "  injected=" << cell.injected << "  [" << cell.diagnostic << "]\n";
  }
  return os.str();
}

DegradationReport mpm_degradation(const ProblemSpec& spec,
                                  const TimingConstraints& constraints,
                                  const MpmAlgorithmFactory& factory,
                                  const std::vector<std::int32_t>& crash_counts,
                                  const std::vector<std::int32_t>& loss_percents,
                                  std::uint64_t seed,
                                  const MpmRunLimits& limits) {
  DegradationReport report;
  report.algorithm = factory.name();
  report.substrate = "mpm";
  // Grid cells are fully independent (per-cell injector and scheduler, both
  // seeded by the cell's own (k, p)); the cell list fixes the order.
  struct Cell {
    std::int32_t k;
    std::int32_t p;
  };
  std::vector<Cell> grid;
  for (const std::int32_t k : crash_counts)
    for (const std::int32_t p : loss_percents) grid.push_back(Cell{k, p});
  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards = make_shards(parent, grid.size());
  report.cells.resize(grid.size());
  recovery::supervised_sweep(
      "mpm_degradation", grid.size(),
      [&](std::size_t i) {
        const std::int32_t k = grid[i].k;
        const std::int32_t p = grid[i].p;
        obs::Observer* const o = shards[i].observer();
        obs::ProfileScope exec_scope(o ? o->profiler : nullptr,
                                     obs::ProfilePhase::kExecTask);
        obs::Span span(o ? o->trace : nullptr, "degradation.mpm_cell", "sim",
                       o && o->trace
                           ? obs::args_object({obs::arg_int("crashes", k),
                                               obs::arg_int("percent", p)})
                           : std::string());
        FaultInjector injector(grid_plan(
            k, p, false, spec.n, seed + 131 * static_cast<std::uint64_t>(k) +
                                     static_cast<std::uint64_t>(p)));
        auto sched = canonical_scheduler(constraints, spec.n);
        FixedDelay delay(constraints.d2);
        const MpmOutcome out = run_mpm_once(spec, constraints, factory,
                                            *sched, delay, limits, &injector,
                                            o);
        DegradationCell cell;
        cell.crashes = k;
        cell.fault_percent = p;
        fill_cell(cell, out.verdict, out.run.error, out.run.completed,
                  injector, spec);
        return encode_degradation_cell(cell);
      },
      [&](std::size_t i, const std::string& payload) {
        shards[i].merge_into_parent();
        report.cells[i] =
            decode_degradation_cell(payload, grid[i].k, grid[i].p);
      });
  return report;
}

DegradationReport smm_degradation(
    const ProblemSpec& spec, const TimingConstraints& constraints,
    const SmmAlgorithmFactory& factory,
    const std::vector<std::int32_t>& crash_counts,
    const std::vector<std::int32_t>& corrupt_percents, std::uint64_t seed,
    const SmmRunLimits& limits) {
  DegradationReport report;
  report.algorithm = factory.name();
  report.substrate = "smm";
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  struct Cell {
    std::int32_t k;
    std::int32_t p;
  };
  std::vector<Cell> grid;
  for (const std::int32_t k : crash_counts)
    for (const std::int32_t p : corrupt_percents) grid.push_back(Cell{k, p});
  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards = make_shards(parent, grid.size());
  report.cells.resize(grid.size());
  recovery::supervised_sweep(
      "smm_degradation", grid.size(),
      [&](std::size_t i) {
        const std::int32_t k = grid[i].k;
        const std::int32_t p = grid[i].p;
        obs::Observer* const o = shards[i].observer();
        obs::ProfileScope exec_scope(o ? o->profiler : nullptr,
                                     obs::ProfilePhase::kExecTask);
        obs::Span span(o ? o->trace : nullptr, "degradation.smm_cell", "sim",
                       o && o->trace
                           ? obs::args_object({obs::arg_int("crashes", k),
                                               obs::arg_int("percent", p)})
                           : std::string());
        FaultInjector injector(grid_plan(
            k, p, true, spec.n, seed + 131 * static_cast<std::uint64_t>(k) +
                                    static_cast<std::uint64_t>(p)));
        auto sched = canonical_scheduler(constraints, total);
        const SmmOutcome out = run_smm_once(spec, constraints, factory,
                                            *sched, limits, &injector, o);
        DegradationCell cell;
        cell.crashes = k;
        cell.fault_percent = p;
        fill_cell(cell, out.verdict, out.run.error, out.run.completed,
                  injector, spec);
        return encode_degradation_cell(cell);
      },
      [&](std::size_t i, const std::string& payload) {
        shards[i].merge_into_parent();
        report.cells[i] =
            decode_degradation_cell(payload, grid[i].k, grid[i].p);
      });
  return report;
}

// --- Chaos sweeps -----------------------------------------------------------

namespace {

// Per-run classification produced inside the sweep tasks and folded in run
// order afterwards.
struct ChaosRun {
  RunOutcome outcome = RunOutcome::kSolved;
  bool ok = true;
  std::string violation;
  std::string digest;
};

// The bucket invariants of the robustness contract (the sweep form of the
// FaultFuzz expect_contract checks): solved runs are admissible, solve and
// carry no error; degraded runs keep an admissible partial trace; diagnosed
// runs name their inadmissibility or carry a structured error; and an error
// always means the run did not complete.
template <typename RunResult>
ChaosRun classify_chaos(const RunResult& run, const Verdict& v,
                        std::uint64_t seed) {
  ChaosRun r;
  r.outcome = classify_outcome(run.error, v);
  switch (r.outcome) {
    case RunOutcome::kSolved:
      if (!v.admissible || !v.solves || run.error) {
        r.ok = false;
        r.violation = "solved bucket violated";
      }
      break;
    case RunOutcome::kDegraded:
      if (!v.admissible) {
        r.ok = false;
        r.violation = "degraded but inadmissible: " +
                      v.admissibility_violation;
      }
      break;
    case RunOutcome::kDiagnosed:
      if (v.admissible && !run.error) {
        r.ok = false;
        r.violation = "diagnosed without violation or error";
      } else if (!v.admissible && v.admissibility_violation.empty()) {
        r.ok = false;
        r.violation = "inadmissible without a named violation";
      }
      break;
  }
  if (run.error && run.completed) {
    r.ok = false;
    r.violation = "completed run carries an error";
  }
  if (!r.ok) r.violation = "seed " + std::to_string(seed) + ": " + r.violation;
  r.digest = std::to_string(seed) + ":" + sesp::to_string(r.outcome) + ":" +
             std::to_string(v.sessions) + (run.completed ? ":c;" : ":x;");
  return r;
}

void fold_chaos(ChaosReport& report, const ChaosRun& r) {
  ++report.runs;
  switch (r.outcome) {
    case RunOutcome::kSolved: ++report.solved; break;
    case RunOutcome::kDegraded: ++report.degraded; break;
    case RunOutcome::kDiagnosed: ++report.diagnosed; break;
  }
  if (!r.ok && report.contract_ok) {
    report.contract_ok = false;
    report.first_violation = r.violation;
  }
  report.digest += r.digest;
}

std::string encode_chaos_run(const ChaosRun& r) {
  recovery::PayloadWriter w;
  w.put_int("outcome", static_cast<std::int64_t>(r.outcome));
  w.put_bool("ok", r.ok);
  w.put("violation", r.violation);
  w.put("digest", r.digest);
  return w.str();
}

ChaosRun decode_chaos_run(const std::string& payload, std::uint64_t seed) {
  ChaosRun r;
  if (const auto failure = recovery::decode_task_failure(payload)) {
    r.outcome = RunOutcome::kDiagnosed;
    r.ok = false;
    r.violation = "seed " + std::to_string(seed) + ": " + failure->to_string();
    r.digest = std::to_string(seed) + ":failed;";
    return r;
  }
  const recovery::PayloadReader reader(payload);
  const std::int64_t outcome = reader.get_int("outcome", 0);
  r.outcome = outcome == 1   ? RunOutcome::kDegraded
              : outcome == 2 ? RunOutcome::kDiagnosed
                             : RunOutcome::kSolved;
  r.ok = reader.get_bool("ok", false);
  r.violation = reader.get("violation");
  r.digest = reader.get("digest");
  return r;
}

// Schedule bounds for the chaos schedules, robust across timing models
// whose c1/c2 may be unset (zero).
Duration chaos_gap_lo(const TimingConstraints& c) {
  return c.c1.is_positive() ? c.c1 : Duration(1, 2);
}
Duration chaos_gap_hi(const TimingConstraints& c) {
  const Duration lo = chaos_gap_lo(c);
  return lo < c.c2 ? c.c2 : lo * 4;
}

}  // namespace

ChaosReport mpm_chaos_sweep(const ProblemSpec& spec,
                            const TimingConstraints& constraints,
                            const MpmAlgorithmFactory& factory,
                            std::int32_t runs, std::uint64_t seed,
                            const MpmRunLimits& limits) {
  const std::size_t count = runs > 0 ? static_cast<std::size_t>(runs) : 0;
  const Duration lo = chaos_gap_lo(constraints);
  const Duration hi = chaos_gap_hi(constraints);
  const Duration dmax =
      constraints.d2.is_positive() ? constraints.d2 : Duration(4);
  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards = make_shards(parent, count);
  ChaosReport report;
  recovery::supervised_sweep(
      "mpm_chaos", count,
      [&](std::size_t i) {
        const std::uint64_t run_seed = seed + 2654435761ULL * i;
        obs::Observer* const o = shards[i].observer();
        obs::ProfileScope exec_scope(o ? o->profiler : nullptr,
                                     obs::ProfilePhase::kExecTask);
        obs::Span span(
            o ? o->trace : nullptr, "chaos.mpm_run", "sim",
            o && o->trace
                ? obs::args_object({obs::arg_int(
                      "seed", static_cast<std::int64_t>(run_seed))})
                : std::string());
        FaultInjector injector(FaultPlan::random(run_seed, spec.n));
        UniformGapScheduler sched(lo, hi, run_seed + 1);
        UniformRandomDelay delay(Duration(0), dmax, run_seed + 2);
        const MpmOutcome out = run_mpm_once(spec, constraints, factory, sched,
                                            delay, limits, &injector, o);
        return encode_chaos_run(classify_chaos(out.run, out.verdict,
                                               run_seed));
      },
      [&](std::size_t i, const std::string& payload) {
        shards[i].merge_into_parent();
        fold_chaos(report,
                   decode_chaos_run(payload, seed + 2654435761ULL * i));
      });
  return report;
}

ChaosReport smm_chaos_sweep(const ProblemSpec& spec,
                            const TimingConstraints& constraints,
                            const SmmAlgorithmFactory& factory,
                            std::int32_t runs, std::uint64_t seed,
                            const SmmRunLimits& limits) {
  const std::size_t count = runs > 0 ? static_cast<std::size_t>(runs) : 0;
  const Duration lo = chaos_gap_lo(constraints);
  const Duration hi = chaos_gap_hi(constraints);
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  obs::Observer* const parent = obs::default_observer();
  std::deque<obs::ObservationShard> shards = make_shards(parent, count);
  ChaosReport report;
  recovery::supervised_sweep(
      "smm_chaos", count,
      [&](std::size_t i) {
        const std::uint64_t run_seed = seed + 2654435761ULL * i;
        obs::Observer* const o = shards[i].observer();
        obs::ProfileScope exec_scope(o ? o->profiler : nullptr,
                                     obs::ProfilePhase::kExecTask);
        obs::Span span(
            o ? o->trace : nullptr, "chaos.smm_run", "sim",
            o && o->trace
                ? obs::args_object({obs::arg_int(
                      "seed", static_cast<std::int64_t>(run_seed))})
                : std::string());
        FaultInjector injector(FaultPlan::random(run_seed, total));
        UniformGapScheduler sched(lo, hi, run_seed + 1);
        const SmmOutcome out = run_smm_once(spec, constraints, factory, sched,
                                            limits, &injector, o);
        return encode_chaos_run(classify_chaos(out.run, out.verdict,
                                               run_seed));
      },
      [&](std::size_t i, const std::string& payload) {
        shards[i].merge_into_parent();
        fold_chaos(report,
                   decode_chaos_run(payload, seed + 2654435761ULL * i));
      });
  return report;
}

}  // namespace sesp
