#include "sim/experiment.hpp"

#include <memory>
#include <sstream>
#include <vector>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"

namespace sesp {

namespace {

void fold(WorstCase& wc, const Verdict& v, bool completed, bool hit_limit,
          const std::optional<SimError>& error, const std::string& label) {
  ++wc.runs;
  if (!v.admissible || !v.solves || hit_limit || error) {
    wc.all_solved = wc.all_solved && v.solves && !hit_limit && !error;
    wc.all_admissible = wc.all_admissible && v.admissible;
    if (wc.first_failure.empty()) {
      wc.first_failure = label + ": ";
      if (!v.admissible)
        wc.first_failure += "inadmissible (" + v.admissibility_violation + ")";
      else if (error)
        wc.first_failure += error->to_string();
      else if (hit_limit)
        wc.first_failure += "hit run limit";
      else
        wc.first_failure +=
            "solved=false (sessions=" + std::to_string(v.sessions) + ")";
    }
  }
  // Limit hits are recorded on their own channel: a run that trips a limit
  // must name the adversary and the limit even when another run already
  // claimed first_failure (or succeeds later).
  if (hit_limit && wc.first_limit_hit.empty())
    wc.first_limit_hit =
        label + ": " + (error ? error->to_string() : "hit run limit");
  if (wc.runs == 1 || v.sessions < wc.min_sessions)
    wc.min_sessions = v.sessions;
  if (completed && v.termination_time &&
      wc.max_termination < *v.termination_time)
    wc.max_termination = *v.termination_time;
  const std::int64_t rounds = v.rounds.rounds_ceiling();
  if (wc.max_rounds < rounds) wc.max_rounds = rounds;
  if (v.gamma && wc.max_gamma < *v.gamma) wc.max_gamma = *v.gamma;
}

}  // namespace

MpmOutcome run_mpm_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const MpmAlgorithmFactory& factory,
                        StepScheduler& scheduler, DelayStrategy& delays,
                        const MpmRunLimits& limits, FaultInjector* faults,
                        obs::Observer* observer) {
  MpmSimulator sim(spec, constraints, factory, scheduler, delays, faults,
                   observer);
  MpmOutcome out{sim.run(limits), Verdict{}};
  out.verdict = verify(out.run.trace, spec, constraints, observer);
  return out;
}

SmmOutcome run_smm_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const SmmAlgorithmFactory& factory,
                        StepScheduler& scheduler, const SmmRunLimits& limits,
                        FaultInjector* faults, obs::Observer* observer) {
  SmmSimulator sim(spec, constraints, factory, scheduler, faults, observer);
  SmmOutcome out{sim.run(limits), Verdict{}};
  out.verdict = verify(out.run.trace, spec, constraints, observer);
  return out;
}

P2pOutcome run_p2p_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const Topology& topology,
                        const P2pAlgorithmFactory& factory,
                        StepScheduler& scheduler, DelayStrategy& delays,
                        const P2pRunLimits& limits, FaultInjector* faults,
                        obs::Observer* observer) {
  P2pSimulator sim(spec, constraints, topology, factory, scheduler, delays,
                   faults, observer);
  P2pOutcome out{sim.run(limits), Verdict{}};
  out.verdict = verify(out.run.trace, spec, constraints, observer);
  return out;
}

WorstCase mpm_worst_case(const ProblemSpec& spec,
                         const TimingConstraints& constraints,
                         const MpmAlgorithmFactory& factory,
                         std::int32_t random_runs, std::uint64_t seed,
                         const MpmRunLimits& limits) {
  WorstCase wc;
  const std::int32_t n = spec.n;

  struct Adversary {
    std::string label;
    std::unique_ptr<StepScheduler> sched;
    std::unique_ptr<DelayStrategy> delay;
  };
  std::vector<Adversary> family;
  auto add = [&family](std::string label, std::unique_ptr<StepScheduler> s,
                       std::unique_ptr<DelayStrategy> d) {
    family.push_back(Adversary{std::move(label), std::move(s), std::move(d)});
  };

  switch (constraints.model) {
    case TimingModel::kSynchronous:
      add("lockstep",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      break;
    case TimingModel::kPeriodic: {
      add("periods/max-delay",
          std::make_unique<FixedPeriodScheduler>(constraints.periods),
          std::make_unique<FixedDelay>(constraints.d2));
      add("periods/zero-delay",
          std::make_unique<FixedPeriodScheduler>(constraints.periods),
          std::make_unique<FixedDelay>(Duration(0)));
      add("periods/straggler",
          std::make_unique<FixedPeriodScheduler>(constraints.periods),
          std::make_unique<StragglerDelay>(0, Duration(0), constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("periods/random-delay#" + std::to_string(r),
            std::make_unique<FixedPeriodScheduler>(constraints.periods),
            std::make_unique<UniformRandomDelay>(Duration(0), constraints.d2,
                                                 seed + 31 * r + 1));
      break;
    }
    case TimingModel::kSemiSynchronous:
      add("all-slow/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      add("all-fast/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c1),
          std::make_unique<FixedDelay>(constraints.d2));
      add("slow-one/max-delay",
          std::make_unique<SlowOneScheduler>(n, constraints.c1, 0,
                                             constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("random#" + std::to_string(r),
            std::make_unique<UniformGapScheduler>(constraints.c1,
                                                  constraints.c2,
                                                  seed + 77 * r + 3),
            std::make_unique<UniformRandomDelay>(Duration(0), constraints.d2,
                                                 seed + 77 * r + 4));
      break;
    case TimingModel::kSporadic:
      add("all-c1/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c1),
          std::make_unique<FixedDelay>(constraints.d2));
      add("all-c1/min-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c1),
          std::make_unique<FixedDelay>(constraints.d1));
      add("slow-one/max-delay",
          std::make_unique<SlowOneScheduler>(n, constraints.c1, 0,
                                             constraints.c1 * 16),
          std::make_unique<FixedDelay>(constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("bursty#" + std::to_string(r),
            std::make_unique<BurstyScheduler>(constraints.c1, 1, 8, 12,
                                              seed + 13 * r + 5),
            std::make_unique<UniformRandomDelay>(constraints.d1,
                                                 constraints.d2,
                                                 seed + 13 * r + 6));
      break;
    case TimingModel::kAsynchronous:
      add("all-c2/max-delay",
          std::make_unique<FixedPeriodScheduler>(n, constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      add("slow-one/max-delay",
          std::make_unique<SlowOneScheduler>(n, constraints.c2 / 4, 0,
                                             constraints.c2),
          std::make_unique<FixedDelay>(constraints.d2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("random#" + std::to_string(r),
            std::make_unique<UniformGapScheduler>(constraints.c2 / 16,
                                                  constraints.c2,
                                                  seed + 7 * r + 9),
            std::make_unique<UniformRandomDelay>(Duration(0), constraints.d2,
                                                 seed + 7 * r + 10));
      break;
  }

  obs::Observer* const o = obs::default_observer();
  for (Adversary& adv : family) {
    obs::Span span(o ? o->trace : nullptr, "adversary.mpm_worst_case",
                   "adversary",
                   o && o->trace
                       ? obs::args_object({obs::arg_str("label", adv.label)})
                       : std::string());
    const MpmOutcome out = run_mpm_once(spec, constraints, factory,
                                        *adv.sched, *adv.delay, limits);
    wc.any_hit_limit = wc.any_hit_limit || out.run.hit_limit;
    fold(wc, out.verdict, out.run.completed, out.run.hit_limit, out.run.error,
         adv.label);
  }
  return wc;
}

WorstCase smm_worst_case(const ProblemSpec& spec,
                         const TimingConstraints& constraints,
                         const SmmAlgorithmFactory& factory,
                         std::int32_t random_runs, std::uint64_t seed,
                         const SmmRunLimits& limits) {
  WorstCase wc;
  const std::int32_t total = smm_total_processes(spec.n, spec.b);

  struct Adversary {
    std::string label;
    std::unique_ptr<StepScheduler> sched;
  };
  std::vector<Adversary> family;
  auto add = [&family](std::string label, std::unique_ptr<StepScheduler> s) {
    family.push_back(Adversary{std::move(label), std::move(s)});
  };

  switch (constraints.model) {
    case TimingModel::kSynchronous:
      add("lockstep",
          std::make_unique<FixedPeriodScheduler>(total, constraints.c2));
      break;
    case TimingModel::kPeriodic:
      add("periods",
          std::make_unique<FixedPeriodScheduler>(constraints.periods));
      break;
    case TimingModel::kSemiSynchronous:
      add("all-slow",
          std::make_unique<FixedPeriodScheduler>(total, constraints.c2));
      add("all-fast",
          std::make_unique<FixedPeriodScheduler>(total, constraints.c1));
      add("slow-one", std::make_unique<SlowOneScheduler>(
                          total, constraints.c1, 0, constraints.c2));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("random#" + std::to_string(r),
            std::make_unique<UniformGapScheduler>(
                constraints.c1, constraints.c2, seed + 41 * r + 11));
      break;
    case TimingModel::kSporadic:
    case TimingModel::kAsynchronous: {
      const Duration base = constraints.model == TimingModel::kSporadic
                                ? constraints.c1
                                : Duration(1);
      add("all-base", std::make_unique<FixedPeriodScheduler>(total, base));
      add("slow-one",
          std::make_unique<SlowOneScheduler>(total, base, 0, base * 16));
      for (std::int32_t r = 0; r < random_runs; ++r)
        add("bursty#" + std::to_string(r),
            std::make_unique<BurstyScheduler>(base, 1, 8, 12,
                                              seed + 59 * r + 13));
      break;
    }
  }

  obs::Observer* const o = obs::default_observer();
  for (Adversary& adv : family) {
    obs::Span span(o ? o->trace : nullptr, "adversary.smm_worst_case",
                   "adversary",
                   o && o->trace
                       ? obs::args_object({obs::arg_str("label", adv.label)})
                       : std::string());
    const SmmOutcome out =
        run_smm_once(spec, constraints, factory, *adv.sched, limits);
    wc.any_hit_limit = wc.any_hit_limit || out.run.hit_limit;
    fold(wc, out.verdict, out.run.completed, out.run.hit_limit, out.run.error,
         adv.label);
  }
  return wc;
}

// --- Degradation sweeps -----------------------------------------------------

namespace {

// The canonical deterministic adversary of each model (its first worst-case
// family member): degradation cells isolate the injected faults, so the
// schedule itself stays fixed and admissible.
std::unique_ptr<StepScheduler> canonical_scheduler(
    const TimingConstraints& constraints, std::int32_t num_processes) {
  switch (constraints.model) {
    case TimingModel::kPeriodic:
      return std::make_unique<FixedPeriodScheduler>(constraints.periods);
    case TimingModel::kSporadic:
      return std::make_unique<FixedPeriodScheduler>(num_processes,
                                                    constraints.c1);
    case TimingModel::kSynchronous:
    case TimingModel::kSemiSynchronous:
      return std::make_unique<FixedPeriodScheduler>(num_processes,
                                                    constraints.c2);
    case TimingModel::kAsynchronous:
      return std::make_unique<FixedPeriodScheduler>(
          num_processes, constraints.c2.is_positive() ? constraints.c2
                                                      : Duration(1));
  }
  return std::make_unique<FixedPeriodScheduler>(num_processes, Duration(1));
}

FaultPlan grid_plan(std::int32_t crashes, std::int32_t percent, bool smm,
                    std::int32_t n, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  for (std::int32_t i = 0; i < crashes && i < n; ++i)
    plan.crashes.push_back(CrashFault{i, 1 + i});
  if (smm)
    plan.writes.corrupt_percent = static_cast<std::uint32_t>(percent);
  else
    plan.messages.drop_percent = static_cast<std::uint32_t>(percent);
  return plan;
}

void fill_cell(DegradationCell& cell, const Verdict& verdict,
               const std::optional<SimError>& error, bool completed,
               const FaultInjector& injector, const ProblemSpec& spec) {
  cell.outcome = classify_outcome(error, verdict);
  cell.sessions = verdict.sessions;
  cell.completed = completed;
  cell.admissible = verdict.admissible;
  cell.injected = static_cast<std::int64_t>(injector.log().size());
  cell.diagnostic = outcome_diagnostic(error, verdict, spec);
}

}  // namespace

std::int32_t DegradationReport::count(RunOutcome outcome) const {
  std::int32_t c = 0;
  for (const DegradationCell& cell : cells)
    if (cell.outcome == outcome) ++c;
  return c;
}

std::string DegradationReport::to_string() const {
  std::ostringstream os;
  os << substrate << " " << algorithm << " degradation:\n";
  for (const DegradationCell& cell : cells) {
    os << "  k=" << cell.crashes << " p=" << cell.fault_percent
       << "%  " << sesp::to_string(cell.outcome)
       << "  sessions=" << cell.sessions
       << (cell.completed ? "  completed" : "  stopped")
       << "  injected=" << cell.injected << "  [" << cell.diagnostic << "]\n";
  }
  return os.str();
}

DegradationReport mpm_degradation(const ProblemSpec& spec,
                                  const TimingConstraints& constraints,
                                  const MpmAlgorithmFactory& factory,
                                  const std::vector<std::int32_t>& crash_counts,
                                  const std::vector<std::int32_t>& loss_percents,
                                  std::uint64_t seed,
                                  const MpmRunLimits& limits) {
  DegradationReport report;
  report.algorithm = factory.name();
  report.substrate = "mpm";
  obs::Observer* const o = obs::default_observer();
  for (const std::int32_t k : crash_counts) {
    for (const std::int32_t p : loss_percents) {
      obs::Span span(o ? o->trace : nullptr, "degradation.mpm_cell", "sim",
                     o && o->trace
                         ? obs::args_object({obs::arg_int("crashes", k),
                                             obs::arg_int("percent", p)})
                         : std::string());
      FaultInjector injector(grid_plan(
          k, p, false, spec.n, seed + 131 * static_cast<std::uint64_t>(k) +
                                   static_cast<std::uint64_t>(p)));
      auto sched = canonical_scheduler(constraints, spec.n);
      FixedDelay delay(constraints.d2);
      const MpmOutcome out = run_mpm_once(spec, constraints, factory, *sched,
                                          delay, limits, &injector);
      DegradationCell cell;
      cell.crashes = k;
      cell.fault_percent = p;
      fill_cell(cell, out.verdict, out.run.error, out.run.completed, injector,
                spec);
      report.cells.push_back(std::move(cell));
    }
  }
  return report;
}

DegradationReport smm_degradation(
    const ProblemSpec& spec, const TimingConstraints& constraints,
    const SmmAlgorithmFactory& factory,
    const std::vector<std::int32_t>& crash_counts,
    const std::vector<std::int32_t>& corrupt_percents, std::uint64_t seed,
    const SmmRunLimits& limits) {
  DegradationReport report;
  report.algorithm = factory.name();
  report.substrate = "smm";
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  obs::Observer* const o = obs::default_observer();
  for (const std::int32_t k : crash_counts) {
    for (const std::int32_t p : corrupt_percents) {
      obs::Span span(o ? o->trace : nullptr, "degradation.smm_cell", "sim",
                     o && o->trace
                         ? obs::args_object({obs::arg_int("crashes", k),
                                             obs::arg_int("percent", p)})
                         : std::string());
      FaultInjector injector(grid_plan(
          k, p, true, spec.n, seed + 131 * static_cast<std::uint64_t>(k) +
                                  static_cast<std::uint64_t>(p)));
      auto sched = canonical_scheduler(constraints, total);
      const SmmOutcome out =
          run_smm_once(spec, constraints, factory, *sched, limits, &injector);
      DegradationCell cell;
      cell.crashes = k;
      cell.fault_percent = p;
      fill_cell(cell, out.verdict, out.run.error, out.run.completed, injector,
                spec);
      report.cells.push_back(std::move(cell));
    }
  }
  return report;
}

}  // namespace sesp
