#pragma once

// One-stop experiment driver used by tests, benches and examples: runs an
// algorithm under an adversary, verifies the trace, and aggregates
// worst-case measurements over the canonical adversary family of each
// timing model (the schedule families the paper's arguments quantify over).

#include <cstdint>
#include <optional>
#include <string>

#include "model/ids.hpp"
#include "mpm/mpm_simulator.hpp"
#include "session/verifier.hpp"
#include "smm/smm_simulator.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct MpmOutcome {
  MpmRunResult run;
  Verdict verdict;
};

struct SmmOutcome {
  SmmRunResult run;
  Verdict verdict;
};

MpmOutcome run_mpm_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const MpmAlgorithmFactory& factory,
                        StepScheduler& scheduler, DelayStrategy& delays,
                        const MpmRunLimits& limits = MpmRunLimits{});

SmmOutcome run_smm_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const SmmAlgorithmFactory& factory,
                        StepScheduler& scheduler,
                        const SmmRunLimits& limits = SmmRunLimits{});

// Aggregate over an adversary family.
struct WorstCase {
  std::int32_t runs = 0;
  bool all_admissible = true;
  bool all_solved = true;          // >= s sessions and termination, each run
  bool any_hit_limit = false;
  std::int64_t min_sessions = 0;
  Time max_termination = 0;        // max over completed runs
  std::int64_t max_rounds = 0;     // rounds ceiling, max over runs
  Duration max_gamma = 0;
  std::string first_failure;       // description of the first failed run
};

// Runs the factory under the canonical adversaries of constraints.model:
// the deterministic worst cases (slowest periods, maximal delays, slow-one /
// straggler skews) plus `random_runs` seeded random admissible schedules.
WorstCase mpm_worst_case(const ProblemSpec& spec,
                         const TimingConstraints& constraints,
                         const MpmAlgorithmFactory& factory,
                         std::int32_t random_runs = 8,
                         std::uint64_t seed = 0x5e5510'1992ULL,
                         const MpmRunLimits& limits = MpmRunLimits{});

WorstCase smm_worst_case(const ProblemSpec& spec,
                         const TimingConstraints& constraints,
                         const SmmAlgorithmFactory& factory,
                         std::int32_t random_runs = 8,
                         std::uint64_t seed = 0x5e5510'1992ULL,
                         const SmmRunLimits& limits = SmmRunLimits{});

}  // namespace sesp
