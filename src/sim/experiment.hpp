#pragma once

// One-stop experiment driver used by tests, benches and examples: runs an
// algorithm under an adversary, verifies the trace, and aggregates
// worst-case measurements over the canonical adversary family of each
// timing model (the schedule families the paper's arguments quantify over).
// The degradation API additionally sweeps crash/loss grids and classifies
// every run as solved / degraded / diagnosed — the robustness contract.
//
// Every sweep in this header (worst-case families, degradation grids, chaos
// sweeps) fans its independent runs out over the exec::parallel_for_each
// pool and is bit-identical for every job count, including SESP_JOBS=1: the
// run list is built up front, every run derives its RNG streams from its own
// (seed, run-index) pair, results land in per-run slots, and observability
// goes through per-run obs::ObservationShards merged in run order
// (docs/parallelism.md).
//
// The same sweeps run under recovery::supervised_sweep: with a supervisor
// installed (tool flags --journal/--resume) each slot's result is
// checkpointed, deadline/retry task isolation applies, and an interrupted
// sweep resumes to a byte-identical report; with a shard context attached
// (--shard-dir/--worker-id) the slot space is additionally leased out in
// ranges to cooperating worker processes (docs/robustness.md).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "faults/degradation.hpp"
#include "faults/fault_injector.hpp"
#include "model/ids.hpp"
#include "mpm/mpm_simulator.hpp"
#include "p2p/p2p_simulator.hpp"
#include "session/verifier.hpp"
#include "smm/smm_simulator.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct MpmOutcome {
  MpmRunResult run;
  Verdict verdict;
};

struct SmmOutcome {
  SmmRunResult run;
  Verdict verdict;
};

struct P2pOutcome {
  P2pRunResult run;
  Verdict verdict;
};

// `observer` (optional, unowned) instruments the simulator run and the
// verification pass; when null the process default observer applies.
MpmOutcome run_mpm_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const MpmAlgorithmFactory& factory,
                        StepScheduler& scheduler, DelayStrategy& delays,
                        const MpmRunLimits& limits = MpmRunLimits{},
                        FaultInjector* faults = nullptr,
                        obs::Observer* observer = nullptr);

SmmOutcome run_smm_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const SmmAlgorithmFactory& factory,
                        StepScheduler& scheduler,
                        const SmmRunLimits& limits = SmmRunLimits{},
                        FaultInjector* faults = nullptr,
                        obs::Observer* observer = nullptr);

P2pOutcome run_p2p_once(const ProblemSpec& spec,
                        const TimingConstraints& constraints,
                        const Topology& topology,
                        const P2pAlgorithmFactory& factory,
                        StepScheduler& scheduler, DelayStrategy& delays,
                        const P2pRunLimits& limits = P2pRunLimits{},
                        FaultInjector* faults = nullptr,
                        obs::Observer* observer = nullptr);

// Aggregate over an adversary family.
struct WorstCase {
  std::int32_t runs = 0;
  bool all_admissible = true;
  bool all_solved = true;          // >= s sessions and termination, each run
  bool any_hit_limit = false;
  std::int64_t min_sessions = 0;
  Time max_termination = 0;        // max over completed runs
  std::int64_t max_rounds = 0;     // rounds ceiling, max over runs
  Duration max_gamma = 0;
  std::string first_failure;       // description of the first failed run
  // Which adversary first tripped a run limit and which limit it was —
  // recorded independently of first_failure so a limit hit is never masked
  // by an earlier (or later) non-limit failure.
  std::string first_limit_hit;

  // Field-wise equality, for the jobs-count determinism regressions.
  bool operator==(const WorstCase&) const = default;
};

// Runs the factory under the canonical adversaries of constraints.model:
// the deterministic worst cases (slowest periods, maximal delays, slow-one /
// straggler skews) plus `random_runs` seeded random admissible schedules.
WorstCase mpm_worst_case(const ProblemSpec& spec,
                         const TimingConstraints& constraints,
                         const MpmAlgorithmFactory& factory,
                         std::int32_t random_runs = 8,
                         std::uint64_t seed = 0x5e5510'1992ULL,
                         const MpmRunLimits& limits = MpmRunLimits{});

WorstCase smm_worst_case(const ProblemSpec& spec,
                         const TimingConstraints& constraints,
                         const SmmAlgorithmFactory& factory,
                         std::int32_t random_runs = 8,
                         std::uint64_t seed = 0x5e5510'1992ULL,
                         const SmmRunLimits& limits = SmmRunLimits{});

// --- Degradation sweeps -----------------------------------------------------
//
// For each (crashes k, fault rate p%) grid cell, one run under the model's
// canonical deterministic adversary with a seeded FaultPlan: k crash-stops
// spread over the processes plus p% message loss (MPM) or p% write
// corruption (SMM). Every cell is classified; the contract is that no cell
// ever aborts or reports a silent wrong answer.

struct DegradationCell {
  std::int32_t crashes = 0;
  std::int32_t fault_percent = 0;  // message loss (MPM) / corruption (SMM)
  RunOutcome outcome = RunOutcome::kSolved;
  std::int64_t sessions = 0;
  bool completed = false;
  bool admissible = false;
  std::int64_t injected = 0;       // total injected fault events
  std::string diagnostic;          // outcome_diagnostic() of the run

  bool operator==(const DegradationCell&) const = default;
};

struct DegradationReport {
  std::string algorithm;
  std::string substrate;
  std::vector<DegradationCell> cells;

  std::int32_t count(RunOutcome outcome) const;
  // Rendered table, one row per cell.
  std::string to_string() const;

  bool operator==(const DegradationReport&) const = default;
};

DegradationReport mpm_degradation(
    const ProblemSpec& spec, const TimingConstraints& constraints,
    const MpmAlgorithmFactory& factory,
    const std::vector<std::int32_t>& crash_counts = {0, 1, 2},
    const std::vector<std::int32_t>& loss_percents = {0, 5, 20},
    std::uint64_t seed = 0x0FA17'1992ULL,
    const MpmRunLimits& limits = MpmRunLimits{});

DegradationReport smm_degradation(
    const ProblemSpec& spec, const TimingConstraints& constraints,
    const SmmAlgorithmFactory& factory,
    const std::vector<std::int32_t>& crash_counts = {0, 1, 2},
    const std::vector<std::int32_t>& corrupt_percents = {0, 5, 20},
    std::uint64_t seed = 0x0FA17'1992ULL,
    const SmmRunLimits& limits = SmmRunLimits{});

// --- Chaos sweeps -----------------------------------------------------------
//
// Parallel seeded fault-plan fuzzing, the sweep form of the FaultFuzz tests:
// `runs` independent chaos runs, run r under a random admissible schedule
// and the random fault plan both derived from seed + r's own stream, each
// classified into the solved / degraded / diagnosed contract buckets.
// `digest` is an order-stable fingerprint (one fragment per run, in run
// order) used by the determinism regressions: it must be byte-identical for
// every job count.

struct ChaosReport {
  std::int32_t runs = 0;
  std::int32_t solved = 0;
  std::int32_t degraded = 0;
  std::int32_t diagnosed = 0;
  bool contract_ok = true;      // every run landed cleanly in its bucket
  std::string first_violation;  // first contract breach, if any
  std::string digest;           // "<seed>:<bucket>:<sessions>:<c|x>;" per run

  bool operator==(const ChaosReport&) const = default;
};

ChaosReport mpm_chaos_sweep(const ProblemSpec& spec,
                            const TimingConstraints& constraints,
                            const MpmAlgorithmFactory& factory,
                            std::int32_t runs = 32,
                            std::uint64_t seed = 0xC4A05'1992ULL,
                            const MpmRunLimits& limits = MpmRunLimits{});

ChaosReport smm_chaos_sweep(const ProblemSpec& spec,
                            const TimingConstraints& constraints,
                            const SmmAlgorithmFactory& factory,
                            std::int32_t runs = 32,
                            std::uint64_t seed = 0xC4A05'1992ULL,
                            const SmmRunLimits& limits = SmmRunLimits{});

}  // namespace sesp
