#include "shard/launch.hpp"

#include <fcntl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <thread>

#include "recovery/journal.hpp"
#include "shard/lease.hpp"
#include "shard/shard.hpp"

namespace sesp::shard {

namespace {

// Async-signal-safe stop flag for the monitor loop; mirrors the
// supervisor's handler discipline.
volatile std::sig_atomic_t g_launch_stop = 0;

void launch_signal_handler(int) { g_launch_stop = 1; }

pid_t spawn_worker(const std::vector<std::string>& command,
                   std::int32_t worker_id, const std::string& dir) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;

  // Child: redirect stdout+stderr to the worker log (appending, so a
  // restarted worker's output follows its first run's), then exec.
  const std::string log =
      dir + "/worker-" + std::to_string(worker_id) + ".log";
  const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd >= 0) {
    ::dup2(fd, STDOUT_FILENO);
    ::dup2(fd, STDERR_FILENO);
    if (fd > STDERR_FILENO) ::close(fd);
  }
  std::vector<std::string> args = command;
  args.push_back("--worker-id=" + std::to_string(worker_id));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  ::execvp(argv[0], argv.data());  // fall back to PATH resolution
  std::fprintf(stderr, "cannot exec %s\n", argv[0]);
  std::_Exit(127);
}

struct WorkerSlot {
  pid_t pid = -1;
  bool done = false;
  bool abandoned = false;
};

}  // namespace

std::int64_t count_slot_records(const std::string& dir) {
  std::int64_t total = 0;
  for (const std::string& path : list_worker_journals(dir)) {
    const recovery::JournalSnapshot snap =
        recovery::read_journal_snapshot(path);
    if (snap.ok) total += static_cast<std::int64_t>(snap.records.size());
  }
  return total;
}

std::string self_exe_path(const std::string& fallback) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return fallback;
  buf[n] = '\0';
  return std::string(buf);
}

LaunchResult run_workers(const std::vector<std::string>& command,
                         const LaunchOptions& opt) {
  LaunchResult result;
  if (command.empty()) {
    result.error = "empty worker command";
    return result;
  }
  if (opt.workers < 1) {
    result.error = "--workers must be >= 1";
    return result;
  }

  g_launch_stop = 0;
  void (*saved_int)(int) = std::signal(SIGINT, launch_signal_handler);
  void (*saved_term)(int) = std::signal(SIGTERM, launch_signal_handler);

  const auto note = [&result](std::int32_t worker, const char* kind) {
    result.events.push_back(LaunchEvent{worker, unix_ms_now(), kind});
  };

  std::vector<WorkerSlot> slots(static_cast<std::size_t>(opt.workers));
  for (std::int32_t i = 0; i < opt.workers; ++i) {
    slots[static_cast<std::size_t>(i)].pid =
        spawn_worker(command, i, opt.dir);
    note(i, "spawn");
  }

  bool kill_pending = opt.kill.after_records >= 0;
  bool forwarded = false;
  bool fatal = false;

  const auto live = [&](const WorkerSlot& s) {
    return s.pid > 0 && !s.done && !s.abandoned;
  };

  for (;;) {
    bool any_running = false;
    for (WorkerSlot& slot : slots)
      if (live(slot)) any_running = true;
    if (!any_running) break;

    if (g_launch_stop && !forwarded) {
      for (WorkerSlot& slot : slots)
        if (live(slot)) ::kill(slot.pid, SIGTERM);
      forwarded = true;
      result.interrupted = true;
    }

    if (kill_pending && !g_launch_stop && !fatal &&
        count_slot_records(opt.dir) >= opt.kill.after_records) {
      const std::size_t target =
          static_cast<std::size_t>(opt.kill.worker) % slots.size();
      if (live(slots[target])) {
        ::kill(slots[target].pid, opt.kill.signo);
        ++result.kills;
        note(static_cast<std::int32_t>(target), "kill");
      }
      kill_pending = false;
    }

    for (std::int32_t i = 0; i < opt.workers; ++i) {
      WorkerSlot& slot = slots[static_cast<std::size_t>(i)];
      if (!live(slot)) continue;
      int status = 0;
      const pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
      if (reaped != slot.pid) continue;
      slot.pid = -1;

      bool restart = false;
      if (WIFEXITED(status)) {
        const int code = WEXITSTATUS(status);
        if (code == 0 || code == 1) {
          slot.done = true;
          note(i, "exit");
        } else if (code == 2) {
          // Usage/config error: deterministic, a restart cannot help.
          fatal = true;
          result.error = "worker " + std::to_string(i) +
                         " failed (exit 2); see " + opt.dir + "/worker-" +
                         std::to_string(i) + ".log";
        } else {
          // 75 (drained interrupt) resumes on restart; anything else is
          // a crash-equivalent.
          restart = true;
        }
      } else {
        restart = true;  // killed by a signal
      }

      if (fatal) break;
      if (restart) {
        if (g_launch_stop) {
          slot.done = true;  // it drained our forwarded SIGTERM
          note(i, "exit");
        } else if (result.restarts < opt.max_restarts) {
          ++result.restarts;
          slot.pid = spawn_worker(command, i, opt.dir);
          note(i, "restart");
        } else {
          slot.abandoned = true;
          ++result.abandoned;
          note(i, "abandon");
          std::fprintf(stderr,
                       "shard: worker %d exceeded the restart budget; "
                       "its ranges will be stolen\n", i);
        }
      }
    }

    if (fatal) {
      for (WorkerSlot& slot : slots) {
        if (!live(slot)) continue;
        ::kill(slot.pid, SIGTERM);
        int status = 0;
        ::waitpid(slot.pid, &status, 0);
        slot.pid = -1;
      }
      break;
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  std::signal(SIGINT, saved_int);
  std::signal(SIGTERM, saved_term);
  result.ok = !fatal;
  return result;
}

}  // namespace sesp::shard
