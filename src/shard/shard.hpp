#pragma once

// Sharded sweep execution (docs/robustness.md "Sharded execution"): N
// independent OS processes cooperatively execute one supervised sweep
// through a shared journal directory. The layout of <shard-dir>:
//
//   MANIFEST               sesp-shard/1 tool=<name> config=<hex16>
//   claims/                O_EXCL claim files (shard/lease.hpp)
//   worker-<id>.journal    each worker's sesp-journal/1 stream
//   worker-<id>.log        each worker's redirected stdout+stderr
//   merged.journal         canonical slot-ordered merge (the coordinator's
//                          resume input)
//
// The design is communication-closed: workers never talk to each other —
// they lease disjoint slot ranges through the claims directory, checkpoint
// every computed slot into their own journal, and read peers' journals
// only between rounds. A worker that dies mid-range leaves an expiring
// lease and a torn journal tail; any live worker reclaims the range (work
// stealing) and the torn tail is dropped by the ordinary journal loader.
// Because slot payloads are deterministic, duplicated work folds to
// identical bytes, so the merged report is byte-identical at any worker
// count, any --jobs, any kill schedule.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "recovery/journal.hpp"

namespace sesp::shard {

struct ShardOptions {
  std::string dir;            // the shared shard directory
  std::int32_t worker_id = -1;
  std::int64_t lease_ms = 10'000;  // lease length; renewed every third
  std::int64_t poll_ms = 25;       // wait between rounds when blocked
};

// Ranges per stage are fixed-size chunks of the slot index space,
// independent of worker count (so any number of workers — including a
// late, restarted, or solo one — agrees on range boundaries): at most 64
// ranges, at least 1 slot each.
std::uint64_t shard_chunk(std::uint64_t count);

// Creates <dir> and <dir>/claims when missing (EEXIST is fine).
bool ensure_shard_dir(const std::string& dir, std::string* error);

// First arriver O_EXCL-writes MANIFEST; everyone else validates it. A
// tool/config mismatch is the shard analogue of resuming the wrong
// journal: false + *error, the worker exits 2 before doing any work.
bool ensure_manifest(const std::string& dir, const std::string& tool,
                     std::uint64_t config_digest, std::string* error);

// Reads MANIFEST into *tool / *config_digest.
bool read_manifest(const std::string& dir, std::string* tool,
                   std::uint64_t* config_digest, std::string* error);

// Per-worker handle on the shared shard directory. All methods are called
// from the sweep's driving thread; the heartbeat runs on its own thread
// and touches nothing but its claim file.
class ShardContext {
 public:
  static std::unique_ptr<ShardContext> open(const ShardOptions& opt,
                                            std::string* error);
  ~ShardContext();

  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;

  const ShardOptions& options() const noexcept { return opt_; }

  // Incrementally reads peers' journals (worker-*.journal except our own)
  // and fills *payloads for every (stage, slot) a peer has checkpointed.
  // A non-failure payload is never replaced; a failure payload is
  // upgraded when a peer retried the slot successfully.
  void gather_peers(const std::string& stage,
                    std::vector<std::optional<std::string>>* payloads);

  struct Acquired {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;  // exclusive
    std::string claim_path;
    bool stolen = false;
  };

  // Tries to lease one range of `chunk` slots that still has missing
  // payloads: an unclaimed range first, else an expired one (stealing).
  // Appends the matching lease record to *journal. nullopt when every
  // incomplete range is held by a live lease — the caller polls and
  // re-gathers; *live_leases reports how many such ranges were seen.
  std::optional<Acquired> acquire_range(
      const std::string& stage, std::uint64_t count, std::uint64_t chunk,
      const std::vector<std::optional<std::string>>& payloads,
      recovery::RunJournal* journal, std::size_t* live_leases);

  // Renews the claim's deadline every lease_ms / 3 until stop_heartbeat().
  void start_heartbeat(const Acquired& range);
  void stop_heartbeat();

  // Unix-ms stamps of lease renewals made by heartbeats stopped so far;
  // clears the accumulated list. Safe to call between ranges (the
  // heartbeat thread is joined before its stamps become visible here).
  std::vector<std::int64_t> take_renewals();

  // Marks the claim done and appends the "done" lease record.
  void complete_range(const std::string& stage, const Acquired& range,
                      recovery::RunJournal* journal);

  std::int64_t leases_claimed() const noexcept { return claimed_; }
  std::int64_t leases_stolen() const noexcept { return stolen_; }
  std::int64_t leases_expired_seen() const noexcept { return expired_; }

 private:
  explicit ShardContext(const ShardOptions& opt);

  struct PeerFile;

  ShardOptions opt_;
  std::string claims_dir_;
  // Incremental per-peer read state plus everything gathered so far.
  std::map<std::string, std::unique_ptr<PeerFile>> peers_;
  std::map<std::pair<std::string, std::uint64_t>, std::string> gathered_;
  std::int64_t claimed_ = 0;
  std::int64_t stolen_ = 0;
  std::int64_t expired_ = 0;
  std::vector<std::int64_t> renewals_;

  struct Heartbeat;
  std::unique_ptr<Heartbeat> heartbeat_;
};

// Folds every worker journal in <dir> into out_path (default
// <dir>/merged.journal): slot records deduplicated (non-failure payloads
// win; ties broken by worker id) and rewritten in (stage, slot) order
// under the manifest's header, lease records omitted — so the merged
// bytes are a pure function of the set of computed payloads, independent
// of worker count and kill schedule.
struct MergeStats {
  bool ok = false;
  std::string error;
  std::string out_path;
  std::int64_t workers = 0;
  std::int64_t records = 0;
  std::int64_t duplicates = 0;   // same (stage, slot) in several journals
  std::int64_t lease_events = 0;
  std::int64_t ranges_done = 0;  // "done" lease events across all workers
  std::int64_t torn_dropped = 0;
};

MergeStats merge_shard_dir(const std::string& dir,
                           std::string out_path = std::string());

// The worker journals present in <dir>, sorted by worker id.
std::vector<std::string> list_worker_journals(const std::string& dir);

}  // namespace sesp::shard
