#include "shard/lease.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "recovery/journal.hpp"

namespace sesp::shard {

namespace {

constexpr char kSchema[] = "sesp-claim/1";

// Checksum input mirrors the lease journal record: order-fixed,
// '|'-joined fields.
std::string claim_checksum(std::int32_t worker, std::uint64_t lo,
                           std::uint64_t len, std::int64_t deadline_ms,
                           bool done) {
  std::ostringstream os;
  os << worker << '|' << lo << '|' << len << '|' << deadline_ms << '|'
     << (done ? 1 : 0);
  return recovery::fnv1a_hex(recovery::fnv1a(os.str()));
}

std::string claim_line(std::int32_t worker, std::uint64_t lo,
                       std::uint64_t len, std::int64_t deadline_ms,
                       bool done) {
  std::ostringstream os;
  os << kSchema << " worker=" << worker << " lo=" << lo << " len=" << len
     << " deadline=" << deadline_ms << " done=" << (done ? 1 : 0)
     << " sum=" << claim_checksum(worker, lo, len, deadline_ms, done)
     << '\n';
  return os.str();
}

// Parses one claim file into *state (gen/path already set by the caller);
// leaves valid == false on any mismatch.
void parse_claim_file(const std::string& path, ClaimState* state) {
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  std::getline(in, line);
  std::istringstream ls(line);
  std::string schema, kv;
  ls >> schema;
  if (schema != kSchema) return;
  std::int32_t worker = -1;
  std::uint64_t lo = 0, len = 0;
  std::int64_t deadline = 0;
  int done = 0;
  std::string sum;
  while (ls >> kv) {
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) return;
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    try {
      if (key == "worker") worker = std::stoi(value);
      else if (key == "lo") lo = std::stoull(value);
      else if (key == "len") len = std::stoull(value);
      else if (key == "deadline") deadline = std::stoll(value);
      else if (key == "done") done = std::stoi(value);
      else if (key == "sum") sum = value;
      else return;
    } catch (...) {
      return;
    }
  }
  if (sum != claim_checksum(worker, lo, len, deadline, done != 0)) return;
  state->valid = true;
  state->worker = worker;
  state->lo = lo;
  state->len = len;
  state->deadline_ms = deadline;
  state->done = done != 0;
}

}  // namespace

std::int64_t unix_ms_now() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string stage_key(const std::string& stage) {
  std::string clean = stage;
  for (char& c : clean) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) c = '_';
  }
  return clean + "-" + recovery::fnv1a_hex(recovery::fnv1a(stage)).substr(8);
}

std::string claim_path(const std::string& claims_dir,
                       const std::string& stage, std::uint64_t lo,
                       std::int32_t gen) {
  std::ostringstream os;
  os << claims_dir << '/' << stage_key(stage) << '.' << lo << ".g" << gen;
  return os.str();
}

ClaimState read_claim(const std::string& claims_dir,
                      const std::string& stage, std::uint64_t lo) {
  ClaimState state;
  state.lo = lo;
  // Generations are created in order with no gaps (g+1 only after g was
  // observed), so the first missing generation bounds the scan.
  for (std::int32_t gen = 1;; ++gen) {
    const std::string path = claim_path(claims_dir, stage, lo, gen);
    if (::access(path.c_str(), F_OK) != 0) break;
    state.gen = gen;
    state.path = path;
  }
  if (state.gen > 0) parse_claim_file(state.path, &state);
  return state;
}

bool create_claim(const std::string& claims_dir, const std::string& stage,
                  std::uint64_t lo, std::uint64_t len, std::int32_t gen,
                  std::int32_t worker, std::int64_t deadline_ms,
                  std::string* path_out) {
  const std::string path = claim_path(claims_dir, stage, lo, gen);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;  // EEXIST: somebody else won this generation
  const std::string line = claim_line(worker, lo, len, deadline_ms, false);
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // torn claim: readers treat it as expired, which is safe
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (path_out) *path_out = path;
  return true;
}

bool rewrite_claim(const std::string& path, std::int32_t worker,
                   std::uint64_t lo, std::uint64_t len,
                   std::int64_t deadline_ms, bool done) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << claim_line(worker, lo, len, deadline_ms, done);
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace sesp::shard
