#pragma once

// Worker process management for sharded sweeps (docs/robustness.md
// "Sharded execution"), shared by the in-tool coordinator
// (tools/cli_recovery.hpp, --workers=N) and the sesp_shard launcher.
//
// run_workers() fork+execs N copies of the given command — each with
// --worker-id=<i> appended and stdout/stderr redirected (appending) to
// <dir>/worker-<i>.log — then monitors them:
//
//   exit 0 / 1        worker finished its run: done.
//   exit 75           drained interrupt (EX_TEMPFAIL): restart to resume.
//   exit 2            usage/config error: fatal, every worker is stopped.
//   killed by signal  restart, while the shared restart budget lasts; a
//                     worker past the budget is abandoned (its leases
//                     expire and live peers steal the ranges).
//
// A KillPlan injects one fault deterministically: once the worker
// journals hold `after_records` slot records in total, the chosen worker
// is sent the chosen signal (the kill-and-steal chaos tests and the CI
// smoke job drive this). SIGINT/SIGTERM to the monitor are forwarded to
// every live worker, which drain and exit 75; run_workers() then returns
// with interrupted set.

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

namespace sesp::shard {

struct KillPlan {
  std::int64_t after_records = -1;  // < 0: disabled
  int signo = SIGKILL;
  std::int32_t worker = 0;
};

struct LaunchOptions {
  std::string dir;
  std::int32_t workers = 2;
  std::int32_t max_restarts = 100;  // shared across all workers
  KillPlan kill;
};

// One worker lifecycle transition, stamped with wall-clock time so the
// coordinator can replay the launch timeline into its trace (and
// sesp_trace_merge can line it up against the workers' own traces).
// kind is one of "spawn", "restart", "kill", "exit", "abandon".
struct LaunchEvent {
  std::int32_t worker = 0;
  std::int64_t unix_ms = 0;
  std::string kind;
};

struct LaunchResult {
  bool ok = false;
  bool interrupted = false;
  std::string error;
  std::int32_t restarts = 0;
  std::int32_t kills = 0;
  std::int32_t abandoned = 0;  // workers past the restart budget
  std::vector<LaunchEvent> events;
};

// `command` is the full worker argv (executable first) *without*
// --worker-id; each spawn appends its own. Blocks until every worker is
// done, fatal, or abandoned.
LaunchResult run_workers(const std::vector<std::string>& command,
                         const LaunchOptions& opt);

// Total verified slot records across every worker journal in `dir` — the
// KillPlan trigger's progress measure.
std::int64_t count_slot_records(const std::string& dir);

// The running executable's path (/proc/self/exe), or `fallback` when the
// link cannot be read.
std::string self_exe_path(const std::string& fallback);

}  // namespace sesp::shard
