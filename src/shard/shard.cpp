#include "shard/shard.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "recovery/supervisor.hpp"
#include "shard/lease.hpp"

namespace sesp::shard {

namespace {

constexpr char kManifestSchema[] = "sesp-shard/1";

bool write_file_excl(const std::string& path, const std::string& text) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  return true;
}

bool make_dir(const std::string& path, std::string* error) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  if (error) *error = "cannot create directory " + path;
  return false;
}

// A TaskFailure payload loses to a successful payload from any peer; the
// cheap-reject in decode_task_failure makes this a prefix check.
bool is_failure_payload(const std::string& payload) {
  return recovery::decode_task_failure(payload).has_value();
}

std::optional<std::int32_t> worker_id_from_name(const std::string& name) {
  if (name.rfind("worker-", 0) != 0) return std::nullopt;
  const std::string suffix = ".journal";
  if (name.size() <= 7 + suffix.size() ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return std::nullopt;
  const std::string digits = name.substr(7, name.size() - 7 - suffix.size());
  if (digits.empty()) return std::nullopt;
  std::int32_t id = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + (c - '0');
  }
  return id;
}

}  // namespace

std::uint64_t shard_chunk(std::uint64_t count) {
  const std::uint64_t chunk = (count + 63) / 64;
  return chunk < 1 ? 1 : chunk;
}

bool ensure_shard_dir(const std::string& dir, std::string* error) {
  return make_dir(dir, error) && make_dir(dir + "/claims", error);
}

bool read_manifest(const std::string& dir, std::string* tool,
                   std::uint64_t* config_digest, std::string* error) {
  const std::string path = dir + "/MANIFEST";
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::string schema, tool_kv, config_kv;
  in >> schema >> tool_kv >> config_kv;
  if (schema != kManifestSchema || tool_kv.rfind("tool=", 0) != 0 ||
      config_kv.rfind("config=", 0) != 0) {
    if (error)
      *error = path + ": bad manifest (want " + kManifestSchema + ")";
    return false;
  }
  // The config digest reuses the journal header syntax; round-trip it
  // through the header parser to share the hex validation.
  std::string header = std::string("sesp-journal/1 ") + tool_kv + ' ' +
                       config_kv;
  std::string parsed_tool;
  std::uint64_t parsed_digest = 0;
  std::string header_error;
  if (!recovery::parse_journal_header(header, &parsed_tool, &parsed_digest,
                                      &header_error)) {
    if (error) *error = path + ": " + header_error;
    return false;
  }
  if (tool) *tool = parsed_tool;
  if (config_digest) *config_digest = parsed_digest;
  return true;
}

bool ensure_manifest(const std::string& dir, const std::string& tool,
                     std::uint64_t config_digest, std::string* error) {
  const std::string path = dir + "/MANIFEST";
  std::ostringstream os;
  os << kManifestSchema << " tool=" << tool
     << " config=" << recovery::fnv1a_hex(config_digest) << '\n';
  if (write_file_excl(path, os.str())) return true;
  std::string existing_tool;
  std::uint64_t existing_digest = 0;
  if (!read_manifest(dir, &existing_tool, &existing_digest, error))
    return false;
  if (existing_tool != tool || existing_digest != config_digest) {
    if (error)
      *error = dir + " belongs to a different " +
               (existing_tool != tool ? "tool" : "configuration") +
               " (manifest " + existing_tool + '/' +
               recovery::fnv1a_hex(existing_digest) + ", this run " + tool +
               '/' + recovery::fnv1a_hex(config_digest) + ")";
    return false;
  }
  return true;
}

std::vector<std::string> list_worker_journals(const std::string& dir) {
  std::vector<std::pair<std::int32_t, std::string>> found;
  DIR* d = ::opendir(dir.c_str());
  if (!d) return {};
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (const auto id = worker_id_from_name(name))
      found.emplace_back(*id, dir + "/" + name);
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [id, path] : found) paths.push_back(std::move(path));
  return paths;
}

// Incremental read state for one peer journal: `buf` holds bytes read from
// the file but not yet consumed as complete frames (a frame mid-append by
// a live peer completes on a later gather).
struct ShardContext::PeerFile {
  std::string path;
  std::uintmax_t read_to = 0;
  std::string buf;
  bool header_skipped = false;
};

struct ShardContext::Heartbeat {
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  // Unix-ms stamps of each renewal, appended under mu by the heartbeat
  // thread. Read via take_renewals() only after stop_heartbeat() joins.
  std::vector<std::int64_t> renewals;
};

ShardContext::ShardContext(const ShardOptions& opt)
    : opt_(opt), claims_dir_(opt.dir + "/claims") {}

ShardContext::~ShardContext() { stop_heartbeat(); }

std::unique_ptr<ShardContext> ShardContext::open(const ShardOptions& opt,
                                                 std::string* error) {
  if (opt.worker_id < 0) {
    if (error) *error = "shard worker id must be >= 0";
    return nullptr;
  }
  if (opt.lease_ms <= 0) {
    if (error) *error = "shard lease must be positive";
    return nullptr;
  }
  if (!ensure_shard_dir(opt.dir, error)) return nullptr;
  return std::unique_ptr<ShardContext>(new ShardContext(opt));
}

void ShardContext::gather_peers(
    const std::string& stage,
    std::vector<std::optional<std::string>>* payloads) {
  const std::string own =
      "worker-" + std::to_string(opt_.worker_id) + ".journal";
  for (const std::string& path : list_worker_journals(opt_.dir)) {
    if (path.size() >= own.size() &&
        path.compare(path.size() - own.size(), own.size(), own) == 0)
      continue;
    auto& peer = peers_[path];
    if (!peer) {
      peer = std::make_unique<PeerFile>();
      peer->path = path;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    in.seekg(static_cast<std::streamoff>(peer->read_to));
    std::ostringstream fresh;
    fresh << in.rdbuf();
    const std::string appended = fresh.str();
    peer->read_to += appended.size();
    peer->buf += appended;
    if (!peer->header_skipped) {
      const std::size_t nl = peer->buf.find('\n');
      if (nl == std::string::npos) continue;
      peer->buf.erase(0, nl + 1);
      peer->header_skipped = true;
    }
    std::vector<recovery::JournalRecord> records;
    const std::size_t consumed = recovery::parse_journal_frames(
        peer->buf, 0, &records, nullptr, nullptr);
    peer->buf.erase(0, consumed);
    for (recovery::JournalRecord& r : records) {
      const auto key = std::make_pair(std::move(r.stage), r.slot);
      const auto it = gathered_.find(key);
      if (it == gathered_.end())
        gathered_.emplace(key, std::move(r.payload));
      else if (is_failure_payload(it->second) &&
               !is_failure_payload(r.payload))
        it->second = std::move(r.payload);
    }
  }
  for (std::size_t slot = 0; slot < payloads->size(); ++slot) {
    auto& entry = (*payloads)[slot];
    const auto it = gathered_.find({stage, slot});
    if (it == gathered_.end()) continue;
    if (!entry || (is_failure_payload(*entry) &&
                   !is_failure_payload(it->second)))
      entry.emplace(it->second);
  }
}

std::optional<ShardContext::Acquired> ShardContext::acquire_range(
    const std::string& stage, std::uint64_t count, std::uint64_t chunk,
    const std::vector<std::optional<std::string>>& payloads,
    recovery::RunJournal* journal, std::size_t* live_leases) {
  if (live_leases) *live_leases = 0;
  if (count == 0) return std::nullopt;
  const std::uint64_t ranges = (count + chunk - 1) / chunk;
  for (std::uint64_t r = 0; r < ranges; ++r) {
    const std::uint64_t lo = r * chunk;
    const std::uint64_t hi = std::min(lo + chunk, count);
    bool missing = false;
    for (std::uint64_t slot = lo; slot < hi && !missing; ++slot)
      missing = !payloads[slot].has_value();
    if (!missing) continue;

    const std::int64_t now = unix_ms_now();
    const std::int64_t deadline = now + opt_.lease_ms;
    ClaimState state = read_claim(claims_dir_, stage, lo);
    Acquired out{lo, hi, "", false};
    if (!state.exists()) {
      if (create_claim(claims_dir_, stage, lo, hi - lo, 1, opt_.worker_id,
                       deadline, &out.claim_path)) {
        ++claimed_;
        if (journal)
          journal->append_lease(
              {opt_.worker_id, stage, lo, hi - lo, deadline, "claim"});
        return out;
      }
      state = read_claim(claims_dir_, stage, lo);  // lost the create race
    }
    if (state.exists() && state.expired(now)) {
      ++expired_;
      if (create_claim(claims_dir_, stage, lo, hi - lo, state.gen + 1,
                       opt_.worker_id, deadline, &out.claim_path)) {
        ++stolen_;
        out.stolen = true;
        if (journal)
          journal->append_lease(
              {opt_.worker_id, stage, lo, hi - lo, deadline, "steal"});
        return out;
      }
    }
    // Held by a live lease (or a racing claimer/stealer just beat us).
    if (live_leases) ++*live_leases;
  }
  return std::nullopt;
}

void ShardContext::start_heartbeat(const Acquired& range) {
  stop_heartbeat();
  heartbeat_ = std::make_unique<Heartbeat>();
  Heartbeat* hb = heartbeat_.get();
  const std::string path = range.claim_path;
  const std::int32_t worker = opt_.worker_id;
  const std::uint64_t lo = range.lo;
  const std::uint64_t len = range.hi - range.lo;
  const std::int64_t lease = opt_.lease_ms;
  const std::int64_t interval = std::max<std::int64_t>(lease / 3, 1);
  hb->thread = std::thread([hb, path, worker, lo, len, lease, interval] {
    std::unique_lock<std::mutex> lk(hb->mu);
    while (!hb->stop) {
      hb->cv.wait_for(lk, std::chrono::milliseconds(interval));
      if (hb->stop) break;
      const std::int64_t now = unix_ms_now();
      rewrite_claim(path, worker, lo, len, now + lease, false);
      hb->renewals.push_back(now);
    }
  });
}

void ShardContext::stop_heartbeat() {
  if (!heartbeat_) return;
  {
    std::lock_guard<std::mutex> lk(heartbeat_->mu);
    heartbeat_->stop = true;
  }
  heartbeat_->cv.notify_all();
  heartbeat_->thread.join();
  renewals_.insert(renewals_.end(), heartbeat_->renewals.begin(),
                   heartbeat_->renewals.end());
  heartbeat_.reset();
}

std::vector<std::int64_t> ShardContext::take_renewals() {
  std::vector<std::int64_t> out;
  out.swap(renewals_);
  return out;
}

void ShardContext::complete_range(const std::string& stage,
                                  const Acquired& range,
                                  recovery::RunJournal* journal) {
  // done=1 with a fresh deadline: a completed range is normally never
  // revisited (its slots are all journaled), but if this worker's journal
  // write had failed the deadline still lets peers steal and recompute.
  rewrite_claim(range.claim_path, opt_.worker_id, range.lo,
                range.hi - range.lo, unix_ms_now() + opt_.lease_ms, true);
  if (journal)
    journal->append_lease({opt_.worker_id, stage, range.lo,
                           range.hi - range.lo, 0, "done"});
}

MergeStats merge_shard_dir(const std::string& dir, std::string out_path) {
  MergeStats stats;
  if (out_path.empty()) out_path = dir + "/merged.journal";
  stats.out_path = out_path;

  std::string tool;
  std::uint64_t config_digest = 0;
  std::string manifest_error;
  const bool have_manifest =
      read_manifest(dir, &tool, &config_digest, &manifest_error);

  const std::vector<std::string> journals = list_worker_journals(dir);
  if (journals.empty()) {
    stats.error = "no worker journals in " + dir;
    return stats;
  }

  std::map<std::pair<std::string, std::uint64_t>, std::string> best;
  for (const std::string& path : journals) {
    recovery::JournalSnapshot snap = recovery::read_journal_snapshot(path);
    if (!snap.ok) {
      stats.error = snap.error;
      return stats;
    }
    if (!have_manifest && stats.workers == 0) {
      tool = snap.tool;
      config_digest = snap.config_digest;
    }
    if (snap.tool != tool || snap.config_digest != config_digest) {
      stats.error = path + " belongs to " + snap.tool + '/' +
                    recovery::fnv1a_hex(snap.config_digest) +
                    ", expected " + tool + '/' +
                    recovery::fnv1a_hex(config_digest);
      return stats;
    }
    ++stats.workers;
    stats.torn_dropped += snap.dropped;
    stats.lease_events += static_cast<std::int64_t>(snap.leases.size());
    for (const recovery::LeaseRecord& lease : snap.leases)
      if (lease.event == "done") ++stats.ranges_done;
    for (recovery::JournalRecord& r : snap.records) {
      const auto key = std::make_pair(std::move(r.stage), r.slot);
      const auto it = best.find(key);
      if (it == best.end()) {
        best.emplace(key, std::move(r.payload));
      } else {
        ++stats.duplicates;
        if (is_failure_payload(it->second) && !is_failure_payload(r.payload))
          it->second = std::move(r.payload);
      }
    }
  }

  std::string create_error;
  auto merged = recovery::RunJournal::create(out_path, tool, config_digest,
                                             &create_error);
  if (!merged) {
    stats.error = create_error;
    return stats;
  }
  // One fsync for the whole merge; per-record syncs would dominate.
  merged->set_fsync(false);
  for (const auto& [key, payload] : best) {
    if (!merged->append(key.first, key.second, payload)) {
      stats.error = "cannot append to " + out_path;
      return stats;
    }
  }
  merged->sync();
  stats.records = static_cast<std::int64_t>(best.size());
  stats.ok = true;
  return stats;
}

}  // namespace sesp::shard
