#pragma once

// Claim files — the sharded execution layer's mutual-exclusion primitive
// (docs/robustness.md "Sharded execution"). Each slot range of a stage is
// guarded by a generation-numbered file under <shard-dir>/claims/:
//
//   claims/<stage-key>.<lo>.g<gen>
//   sesp-claim/1 worker=<id> lo=<lo> len=<len> deadline=<unix-ms>
//       done=<0|1> sum=<fnv1a-hex16>            (one line)
//
// Ownership is arbitrated entirely by the filesystem: O_EXCL-creating
// generation 1 claims an unclaimed range; O_EXCL-creating generation g+1
// steals a range whose generation-g lease has expired (exactly one stealer
// wins the create race). The owner renews its deadline and marks
// completion by atomically rewriting its own generation file (write-temp +
// rename), which never disturbs a concurrent O_EXCL on the next
// generation. A claim that fails to parse or checksum — a torn rename on a
// dying worker — counts as expired: stealing a range that is secretly
// still being computed is safe, because slot payloads are deterministic
// and the journals deduplicate.
//
// Wall-clock deadlines (not monotonic) are deliberate: leases must be
// comparable across worker processes, and all workers share one machine's
// clock (the eventually-timely reasoning of docs/robustness.md).

#include <cstdint>
#include <string>

namespace sesp::shard {

// Current wall clock in unix milliseconds — the lease timebase.
std::int64_t unix_ms_now();

// Stable filename key for a stage: sanitized to [A-Za-z0-9._-] plus an
// fnv1a suffix, so distinct stages ("a#2" vs "a_2") never collide after
// sanitization.
std::string stage_key(const std::string& stage);

std::string claim_path(const std::string& claims_dir,
                       const std::string& stage, std::uint64_t lo,
                       std::int32_t gen);

// The highest-generation claim on (stage, lo). gen == 0 means unclaimed;
// valid == false means the file exists but is torn/corrupt (treated as
// expired by the stealing rule).
struct ClaimState {
  std::int32_t gen = 0;
  bool valid = false;
  std::int32_t worker = -1;
  std::uint64_t lo = 0;
  std::uint64_t len = 0;
  std::int64_t deadline_ms = 0;
  bool done = false;
  std::string path;

  bool exists() const noexcept { return gen > 0; }
  bool expired(std::int64_t now_ms) const noexcept {
    return !valid || deadline_ms < now_ms;
  }
};

ClaimState read_claim(const std::string& claims_dir,
                      const std::string& stage, std::uint64_t lo);

// O_EXCL-creates generation `gen` of (stage, lo). True iff this call won
// the creation race; *path_out (optional) receives the claim path.
bool create_claim(const std::string& claims_dir, const std::string& stage,
                  std::uint64_t lo, std::uint64_t len, std::int32_t gen,
                  std::int32_t worker, std::int64_t deadline_ms,
                  std::string* path_out);

// Atomically rewrites an owned claim file: heartbeat renewal (fresh
// deadline) or completion (done = true). False on I/O errors — the caller
// degrades (an unrenewed lease merely invites a redundant steal).
bool rewrite_claim(const std::string& path, std::int32_t worker,
                   std::uint64_t lo, std::uint64_t len,
                   std::int64_t deadline_ms, bool done);

}  // namespace sesp::shard
