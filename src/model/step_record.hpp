#pragma once

// One step of a timed computation (Section 2.1). A step is either a compute
// step of a (regular or relay) process or a delivery step of the network
// process N. Step records carry exactly the information the counters,
// admissibility checkers and lower-bound constructions need; algorithm local
// state lives in the algorithm objects, not here.

#include <cstdint>
#include <string>

#include "model/ids.hpp"
#include "util/ratio.hpp"

namespace sesp {

enum class StepKind : std::uint8_t {
  kCompute,  // a process step (SMM variable access / MPM receive+broadcast)
  kDeliver,  // a network step moving one (m, q) from net to buf_q (MPM only)
};

struct StepRecord {
  StepKind kind = StepKind::kCompute;
  ProcessId process = 0;  // acting process; kNetworkProcess for kDeliver
  Time time;

  // Port touched by this step, if any. In the MPM every compute step of a
  // port process involves its buf (a port), so port == the process's port
  // index. In the SMM only steps on the port variable count.
  PortIndex port = kNoPort;

  // SMM: the single shared variable this step accesses (k = 1 in the paper's
  // step tuples). kNoVar for MPM compute steps.
  VarId var = kNoVar;

  // MPM delivery step: which message was moved into the recipient buffer.
  MsgId delivered = kNoMsg;

  // True if the process is in an idle state after this step. Idle states are
  // absorbing (Section 2.3 condition 1); the checker enforces it.
  bool idle_after = false;

  // SMM replay support: order-independent digests of the accessed variable's
  // value before and after the step, so a reordered computation can be
  // machine-checked to read the same values (Claim 5.2).
  std::uint64_t value_before_digest = 0;
  std::uint64_t value_after_digest = 0;

  bool is_compute() const noexcept { return kind == StepKind::kCompute; }
  bool is_port_step() const noexcept {
    return kind == StepKind::kCompute && port != kNoPort;
  }

  std::string to_string() const;
};

// A message's life cycle in the MPM (Section 2.1.2). Delay is the time from
// the send (compute) step to the network's delivery step; buffer residence
// before the recipient's next compute step is not part of the delay.
struct MessageRecord {
  MsgId id = kNoMsg;
  ProcessId sender = 0;
  ProcessId recipient = 0;
  std::size_t send_step = 0;  // index into TimedComputation::steps()

  static constexpr std::size_t kPending = static_cast<std::size_t>(-1);
  std::size_t deliver_step = kPending;  // network step index, kPending if none
  std::size_t receive_step = kPending;  // recipient compute step, kPending if none

  // Algorithm payload summary, for debugging and assertions.
  std::int64_t session = 0;
  std::int64_t steps = 0;
  bool done = false;

  bool delivered() const noexcept { return deliver_step != kPending; }
  bool received() const noexcept { return receive_step != kPending; }
};

}  // namespace sesp
