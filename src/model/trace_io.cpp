#include "model/trace_io.hpp"

#include <charconv>
#include <sstream>
#include <vector>

namespace sesp {

namespace {

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::size_t at = 0;
  while (true) {
    const std::size_t next = line.find(sep, at);
    if (next == std::string::npos) {
      out.push_back(line.substr(at));
      return out;
    }
    out.push_back(line.substr(at, next - at));
    at = next + 1;
  }
}

std::optional<std::int64_t> parse_i64(const std::string& s) {
  std::int64_t value = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

bool set_error(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

}  // namespace

std::string ratio_to_text(const Ratio& r) { return r.to_string(); }

std::optional<Ratio> ratio_from_text(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) {
    const auto num = parse_i64(text);
    if (!num) return std::nullopt;
    return Ratio(*num);
  }
  const auto num = parse_i64(text.substr(0, slash));
  const auto den = parse_i64(text.substr(slash + 1));
  if (!num || !den || *den == 0) return std::nullopt;
  return Ratio(*num, *den);
}

std::string to_text(const TimedComputation& trace) {
  std::ostringstream os;
  os << "sesp-trace v1\n";
  os << "meta,"
     << (trace.substrate() == Substrate::kSharedMemory ? "smm" : "mpm") << ","
     << trace.num_processes() << "," << trace.num_ports() << "\n";
  for (const StepRecord& st : trace.steps()) {
    os << "step," << (st.kind == StepKind::kCompute ? "c" : "d") << ","
       << st.process << "," << ratio_to_text(st.time) << "," << st.port << ","
       << st.var << "," << st.delivered << "," << (st.idle_after ? 1 : 0)
       << "," << st.value_before_digest << "," << st.value_after_digest
       << "\n";
  }
  constexpr auto kPending = MessageRecord::kPending;
  for (const MessageRecord& m : trace.messages()) {
    os << "msg," << m.sender << "," << m.recipient << "," << m.send_step
       << ","
       << (m.deliver_step == kPending
               ? "-"
               : std::to_string(m.deliver_step))
       << ","
       << (m.receive_step == kPending
               ? "-"
               : std::to_string(m.receive_step))
       << "," << m.session << "," << m.steps << "," << (m.done ? 1 : 0)
       << "\n";
  }
  return os.str();
}

std::optional<TimedComputation> trace_from_text(const std::string& text,
                                                std::string* error) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != "sesp-trace v1") {
    set_error(error, "missing 'sesp-trace v1' header");
    return std::nullopt;
  }
  if (!std::getline(is, line)) {
    set_error(error, "missing meta line");
    return std::nullopt;
  }
  const auto meta = split(line, ',');
  if (meta.size() != 4 || meta[0] != "meta" ||
      (meta[1] != "smm" && meta[1] != "mpm")) {
    set_error(error, "malformed meta line");
    return std::nullopt;
  }
  const auto procs = parse_i64(meta[2]);
  const auto ports = parse_i64(meta[3]);
  if (!procs || !ports) {
    set_error(error, "malformed meta counts");
    return std::nullopt;
  }

  TimedComputation trace(meta[1] == "smm" ? Substrate::kSharedMemory
                                          : Substrate::kMessagePassing,
                         static_cast<std::int32_t>(*procs),
                         static_cast<std::int32_t>(*ports));

  std::size_t line_no = 2;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = split(line, ',');
    const std::string where = "line " + std::to_string(line_no);
    if (f[0] == "step") {
      if (f.size() != 10) {
        set_error(error, where + ": step needs 10 fields");
        return std::nullopt;
      }
      StepRecord st;
      if (f[1] == "c")
        st.kind = StepKind::kCompute;
      else if (f[1] == "d")
        st.kind = StepKind::kDeliver;
      else {
        set_error(error, where + ": bad step kind");
        return std::nullopt;
      }
      const auto process = parse_i64(f[2]);
      const auto time = ratio_from_text(f[3]);
      const auto port = parse_i64(f[4]);
      const auto var = parse_i64(f[5]);
      const auto delivered = parse_i64(f[6]);
      const auto idle = parse_i64(f[7]);
      const auto dig_b = parse_u64(f[8]);
      const auto dig_a = parse_u64(f[9]);
      if (!process || !time || !port || !var || !delivered || !idle ||
          !dig_b || !dig_a) {
        set_error(error, where + ": malformed step fields");
        return std::nullopt;
      }
      st.process = static_cast<ProcessId>(*process);
      st.time = *time;
      st.port = static_cast<PortIndex>(*port);
      st.var = static_cast<VarId>(*var);
      st.delivered = *delivered;
      st.idle_after = *idle != 0;
      st.value_before_digest = *dig_b;
      st.value_after_digest = *dig_a;
      trace.append(st);
    } else if (f[0] == "msg") {
      if (f.size() != 9) {
        set_error(error, where + ": msg needs 9 fields");
        return std::nullopt;
      }
      MessageRecord m;
      const auto sender = parse_i64(f[1]);
      const auto recipient = parse_i64(f[2]);
      const auto send = parse_u64(f[3]);
      const auto session = parse_i64(f[6]);
      const auto steps = parse_i64(f[7]);
      const auto done = parse_i64(f[8]);
      if (!sender || !recipient || !send || !session || !steps || !done) {
        set_error(error, where + ": malformed msg fields");
        return std::nullopt;
      }
      m.sender = static_cast<ProcessId>(*sender);
      m.recipient = static_cast<ProcessId>(*recipient);
      m.send_step = *send;
      if (f[4] != "-") {
        const auto v = parse_u64(f[4]);
        if (!v) {
          set_error(error, where + ": malformed deliver step");
          return std::nullopt;
        }
        m.deliver_step = *v;
      }
      if (f[5] != "-") {
        const auto v = parse_u64(f[5]);
        if (!v) {
          set_error(error, where + ": malformed receive step");
          return std::nullopt;
        }
        m.receive_step = *v;
      }
      m.session = *session;
      m.steps = *steps;
      m.done = *done != 0;
      trace.append_message(m);
    } else {
      set_error(error, where + ": unknown record '" + f[0] + "'");
      return std::nullopt;
    }
  }
  return trace;
}

std::string to_text(const TimingConstraints& constraints) {
  std::ostringstream os;
  os << "constraints," << to_string(constraints.model) << ","
     << ratio_to_text(constraints.c1) << "," << ratio_to_text(constraints.c2)
     << "," << ratio_to_text(constraints.d1) << ","
     << ratio_to_text(constraints.d2);
  for (const Duration& p : constraints.periods)
    os << "," << ratio_to_text(p);
  return os.str();
}

std::optional<TimingConstraints> constraints_from_text(const std::string& text,
                                                       std::string* error) {
  const auto f = split(text, ',');
  if (f.size() < 6 || f[0] != "constraints") {
    set_error(error, "malformed constraints line");
    return std::nullopt;
  }
  TimingConstraints tc;
  if (f[1] == "synchronous")
    tc.model = TimingModel::kSynchronous;
  else if (f[1] == "periodic")
    tc.model = TimingModel::kPeriodic;
  else if (f[1] == "semi-synchronous")
    tc.model = TimingModel::kSemiSynchronous;
  else if (f[1] == "sporadic")
    tc.model = TimingModel::kSporadic;
  else if (f[1] == "asynchronous")
    tc.model = TimingModel::kAsynchronous;
  else {
    set_error(error, "unknown timing model '" + f[1] + "'");
    return std::nullopt;
  }
  const auto c1 = ratio_from_text(f[2]);
  const auto c2 = ratio_from_text(f[3]);
  const auto d1 = ratio_from_text(f[4]);
  const auto d2 = ratio_from_text(f[5]);
  if (!c1 || !c2 || !d1 || !d2) {
    set_error(error, "malformed constraint bounds");
    return std::nullopt;
  }
  tc.c1 = *c1;
  tc.c2 = *c2;
  tc.d1 = *d1;
  tc.d2 = *d2;
  for (std::size_t i = 6; i < f.size(); ++i) {
    const auto p = ratio_from_text(f[i]);
    if (!p) {
      set_error(error, "malformed period");
      return std::nullopt;
    }
    tc.periods.push_back(*p);
  }
  return tc;
}

}  // namespace sesp
