#include "model/timed_computation.hpp"

#include <cstdint>
#include <map>
#include <sstream>

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace sesp {

namespace {

// Thread-local log-buffer stash (docs/performance.md "Data layout"). Only
// buffers past this capacity are worth recycling; everything smaller is
// cheaper to let the allocator handle.
constexpr std::size_t kStashMin = std::size_t{1} << 12;

thread_local std::vector<StepRecord> stashed_steps;
thread_local std::vector<MessageRecord> stashed_messages;

// Ask the kernel to back a large log buffer with huge pages where it can
// (Linux THP runs in madvise-only mode on most hosts, so without the hint
// the multi-megabyte arenas sit on 4K pages and the hot loops pay TLB
// walks — and whether khugepaged happens to promote them is what made
// run-to-run wall times bimodal). Capacity-only, advisory, and invisible
// to every observable.
template <typename T>
void advise_huge(std::vector<T>& v) {
#ifdef __linux__
  const std::size_t bytes = v.capacity() * sizeof(T);
  if (bytes < (std::size_t{4} << 20)) return;
  auto addr = reinterpret_cast<std::uintptr_t>(v.data());
  const std::uintptr_t end = addr + bytes;
  const std::uintptr_t first = (addr + 0xFFF) & ~std::uintptr_t{0xFFF};
  if (end > first)
    madvise(reinterpret_cast<void*>(first), end - first, MADV_HUGEPAGE);
#endif
}

template <typename T>
void take_from_stash(std::vector<T>& dst, std::vector<T>& stash,
                     std::size_t want) {
  if (dst.capacity() < want && dst.empty() && stash.capacity() >= want) {
    dst = std::move(stash);
    dst.clear();
    stash = {};
  }
  dst.reserve(want);
  advise_huge(dst);
}

template <typename T>
void donate_to_stash(std::vector<T>& src, std::vector<T>& stash) {
  if (src.capacity() >= kStashMin && src.capacity() > stash.capacity()) {
    stash = std::move(src);
    stash.clear();
  }
}

}  // namespace

TimedComputation::TimedComputation(Substrate substrate,
                                   std::int32_t num_processes,
                                   std::int32_t num_ports)
    : substrate_(substrate),
      num_processes_(num_processes),
      num_ports_(num_ports) {}

TimedComputation::~TimedComputation() {
  donate_to_stash(steps_, stashed_steps);
  donate_to_stash(messages_, stashed_messages);
}

void TimedComputation::reserve(std::size_t steps, std::size_t messages) {
  take_from_stash(steps_, stashed_steps, steps);
  take_from_stash(messages_, stashed_messages, messages);
}

std::size_t TimedComputation::append(StepRecord step) {
  steps_.push_back(std::move(step));
  return steps_.size() - 1;
}

MsgId TimedComputation::append_message(MessageRecord msg) {
  msg.id = static_cast<MsgId>(messages_.size());
  messages_.push_back(msg);
  return msg.id;
}

Time TimedComputation::end_time() const noexcept {
  return steps_.empty() ? Time(0) : steps_.back().time;
}

std::vector<Time> TimedComputation::compute_times(ProcessId p) const {
  std::vector<Time> times;
  for (const StepRecord& st : steps_)
    if (st.is_compute() && st.process == p) times.push_back(st.time);
  return times;
}

std::vector<std::size_t> TimedComputation::compute_indices(ProcessId p) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < steps_.size(); ++i)
    if (steps_[i].is_compute() && steps_[i].process == p) idx.push_back(i);
  return idx;
}

bool TimedComputation::all_ports_idle() const {
  std::vector<bool> idle(static_cast<std::size_t>(num_ports_), false);
  std::int32_t remaining = num_ports_;
  for (const StepRecord& st : steps_) {
    if (st.is_compute() && st.idle_after && st.process < num_ports_ &&
        !idle[static_cast<std::size_t>(st.process)]) {
      idle[static_cast<std::size_t>(st.process)] = true;
      if (--remaining == 0) return true;
    }
  }
  return false;
}

std::optional<Time> TimedComputation::termination_time() const {
  std::vector<bool> idle(static_cast<std::size_t>(num_ports_), false);
  std::int32_t remaining = num_ports_;
  for (const StepRecord& st : steps_) {
    if (st.is_compute() && st.idle_after && st.process < num_ports_ &&
        !idle[static_cast<std::size_t>(st.process)]) {
      idle[static_cast<std::size_t>(st.process)] = true;
      if (--remaining == 0) return st.time;
    }
  }
  return std::nullopt;
}

std::size_t TimedComputation::active_prefix_length() const {
  std::vector<bool> idle(static_cast<std::size_t>(num_ports_), false);
  std::int32_t remaining = num_ports_;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const StepRecord& st = steps_[i];
    if (st.is_compute() && st.idle_after && st.process < num_ports_ &&
        !idle[static_cast<std::size_t>(st.process)]) {
      idle[static_cast<std::size_t>(st.process)] = true;
      if (--remaining == 0) return i + 1;
    }
  }
  return steps_.size();
}

std::optional<Duration> TimedComputation::gamma() const {
  const std::size_t prefix = active_prefix_length();
  // Flat per-process predecessor times; "no step yet" and the virtual
  // time-0 predecessor coincide, so zero-initialization is the map's
  // semantics. Out-of-range ids (possible only in hand-built traces) keep
  // the old map behavior via the fallback.
  std::vector<Time> last(static_cast<std::size_t>(
                             num_processes_ > 0 ? num_processes_ : 0),
                         Time(0));
  std::map<ProcessId, Time> stray;
  std::optional<Duration> best;
  for (std::size_t i = 0; i < prefix; ++i) {
    const StepRecord& st = steps_[i];
    if (!st.is_compute()) continue;
    Time* slot;
    if (st.process >= 0 && st.process < num_processes_) {
      slot = &last[static_cast<std::size_t>(st.process)];
    } else {
      slot = &stray.try_emplace(st.process, Time(0)).first->second;
    }
    const Duration gap = st.time - *slot;
    if (!best || *best < gap) best = gap;
    *slot = st.time;
  }
  return best;
}

std::optional<std::string> TimedComputation::structural_error() const {
  // Times nondecreasing.
  for (std::size_t i = 1; i < steps_.size(); ++i) {
    if (steps_[i].time < steps_[i - 1].time)
      return "time decreases at step " + std::to_string(i);
  }
  // Idle states absorbing: once a process records idle_after, all its later
  // compute steps must also be idle.
  std::vector<bool> idle(static_cast<std::size_t>(num_processes_), false);
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const StepRecord& st = steps_[i];
    if (!st.is_compute()) continue;
    if (st.process < 0 || st.process >= num_processes_)
      return "bad process id at step " + std::to_string(i);
    const auto p = static_cast<std::size_t>(st.process);
    if (idle[p] && !st.idle_after)
      return "process " + std::to_string(st.process) +
             " leaves idle state at step " + std::to_string(i);
    if (st.idle_after) idle[p] = true;
  }
  // Message plumbing (MPM).
  for (const MessageRecord& m : messages_) {
    if (m.send_step >= steps_.size())
      return "message " + std::to_string(m.id) + " has bad send step";
    if (m.delivered()) {
      if (m.deliver_step >= steps_.size() || m.deliver_step < m.send_step)
        return "message " + std::to_string(m.id) + " delivered before sent";
      const StepRecord& d = steps_[m.deliver_step];
      if (d.kind != StepKind::kDeliver || d.delivered != m.id)
        return "message " + std::to_string(m.id) +
               " deliver step is not its delivery";
    }
    if (m.received()) {
      if (!m.delivered())
        return "message " + std::to_string(m.id) + " received, never delivered";
      if (m.receive_step >= steps_.size() || m.receive_step < m.deliver_step)
        return "message " + std::to_string(m.id) + " received before delivered";
      const StepRecord& r = steps_[m.receive_step];
      if (!r.is_compute() || r.process != m.recipient)
        return "message " + std::to_string(m.id) +
               " receive step is not a step of its recipient";
    }
  }
  return std::nullopt;
}

std::string TimedComputation::to_string(std::size_t max_steps) const {
  std::ostringstream os;
  os << (substrate_ == Substrate::kSharedMemory ? "SMM" : "MPM") << " trace, "
     << steps_.size() << " steps, " << messages_.size() << " messages\n";
  const std::size_t shown = steps_.size() < max_steps ? steps_.size() : max_steps;
  for (std::size_t i = 0; i < shown; ++i)
    os << "  " << i << ": " << steps_[i].to_string() << '\n';
  if (shown < steps_.size())
    os << "  ... (" << steps_.size() - shown << " more)\n";
  return os.str();
}

}  // namespace sesp
