#pragma once

// A timed computation (Section 2.1): a sequence of steps together with a
// nondecreasing time mapping. This is the central trace object: simulators
// produce it, the session/round counters consume it, the admissibility
// checker validates it, and the lower-bound constructions rewrite it.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "model/step_record.hpp"
#include "util/ratio.hpp"

namespace sesp {

// Which communication substrate produced the trace; some checks only apply
// to one of them.
enum class Substrate : std::uint8_t { kSharedMemory, kMessagePassing };

class TimedComputation {
 public:
  TimedComputation(Substrate substrate, std::int32_t num_processes,
                   std::int32_t num_ports);

  Substrate substrate() const noexcept { return substrate_; }

  // All processes other than N: port processes first (ids 0..num_ports-1),
  // then relay processes in the SMM.
  std::int32_t num_processes() const noexcept { return num_processes_; }
  std::int32_t num_ports() const noexcept { return num_ports_; }

  const std::vector<StepRecord>& steps() const noexcept { return steps_; }
  const std::vector<MessageRecord>& messages() const noexcept {
    return messages_;
  }
  std::vector<MessageRecord>& mutable_messages() noexcept { return messages_; }

  std::size_t append(StepRecord step);
  MsgId append_message(MessageRecord msg);  // assigns and returns the id

  // Time of the last recorded step, or 0 for the empty trace.
  Time end_time() const noexcept;

  // Times of a process's compute steps, in order.
  std::vector<Time> compute_times(ProcessId p) const;

  // Indices of a process's compute steps, in order.
  std::vector<std::size_t> compute_indices(ProcessId p) const;

  // True iff every port process has an idle_after step.
  bool all_ports_idle() const;

  // Time at which the last port process became idle (Section 2.3's running
  // time). nullopt if some port process never idles in this trace.
  std::optional<Time> termination_time() const;

  // Index of the last step before which some port process is still non-idle,
  // i.e. the length of the prefix counted by the round/γ measures. Equals
  // steps().size() when not all ports idle.
  std::size_t active_prefix_length() const;

  // γ: the largest gap between consecutive compute steps of any process
  // (including the gap from time 0 to the first step), over the active
  // prefix. This is the per-computation parameter of Section 2.3 used by the
  // sporadic bounds. nullopt for a trace with no compute steps.
  std::optional<Duration> gamma() const;

  // Structural sanity independent of any timing model: nondecreasing times,
  // idle states absorbing, MPM deliveries referencing sent messages and
  // preceding receipts. Returns an error description or nullopt if valid.
  std::optional<std::string> structural_error() const;

  std::string to_string(std::size_t max_steps = 50) const;

 private:
  Substrate substrate_;
  std::int32_t num_processes_;
  std::int32_t num_ports_;
  std::vector<StepRecord> steps_;
  std::vector<MessageRecord> messages_;
};

}  // namespace sesp
