#pragma once

// A timed computation (Section 2.1): a sequence of steps together with a
// nondecreasing time mapping. This is the central trace object: simulators
// produce it, the session/round counters consume it, the admissibility
// checker validates it, and the lower-bound constructions rewrite it.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "model/step_record.hpp"
#include "util/ratio.hpp"

namespace sesp {

// Which communication substrate produced the trace; some checks only apply
// to one of them.
enum class Substrate : std::uint8_t { kSharedMemory, kMessagePassing };

class TimedComputation {
 public:
  TimedComputation(Substrate substrate, std::int32_t num_processes,
                   std::int32_t num_ports);
  TimedComputation(const TimedComputation&) = default;
  TimedComputation& operator=(const TimedComputation&) = default;
  TimedComputation(TimedComputation&&) = default;
  TimedComputation& operator=(TimedComputation&&) = default;
  // Donates large log buffers to a thread-local stash for the next trace
  // (see reserve()).
  ~TimedComputation();

  Substrate substrate() const noexcept { return substrate_; }

  // All processes other than N: port processes first (ids 0..num_ports-1),
  // then relay processes in the SMM.
  std::int32_t num_processes() const noexcept { return num_processes_; }
  std::int32_t num_ports() const noexcept { return num_ports_; }

  const std::vector<StepRecord>& steps() const noexcept { return steps_; }
  const std::vector<MessageRecord>& messages() const noexcept {
    return messages_;
  }
  std::vector<MessageRecord>& mutable_messages() noexcept { return messages_; }

  std::size_t append(StepRecord step);
  MsgId append_message(MessageRecord msg);  // assigns and returns the id

  // In-place variants for the simulator hot loops: append a
  // default-initialized record and return a reference for the caller to
  // fill, skipping the build-then-copy of the by-value forms. The reference
  // is invalidated by the next append to the same log (steps and messages
  // are separate logs). append_message_slot() assigns the id.
  StepRecord& append_slot() { return steps_.emplace_back(); }
  MessageRecord& append_message_slot() {
    MessageRecord& m = messages_.emplace_back();
    m.id = static_cast<MsgId>(messages_.size() - 1);
    return m;
  }

  // Pre-sizes the step/message logs (capacity only; a hot-loop hint from
  // simulators that know their step budget, so budget-bounded runs never
  // pay the log's geometric reallocations). Reuses buffers donated by
  // earlier traces on this thread when they are big enough — sweeps build
  // and discard one multi-megabyte trace per run, and recycling the arena
  // keeps its pages mapped instead of re-faulting them in every run.
  // Capacity is not an observable, so reuse cannot change a recorded byte.
  void reserve(std::size_t steps, std::size_t messages);

  // Time of the last recorded step, or 0 for the empty trace.
  Time end_time() const noexcept;

  // Times of a process's compute steps, in order.
  std::vector<Time> compute_times(ProcessId p) const;

  // Indices of a process's compute steps, in order.
  std::vector<std::size_t> compute_indices(ProcessId p) const;

  // True iff every port process has an idle_after step.
  bool all_ports_idle() const;

  // Time at which the last port process became idle (Section 2.3's running
  // time). nullopt if some port process never idles in this trace.
  std::optional<Time> termination_time() const;

  // Index of the last step before which some port process is still non-idle,
  // i.e. the length of the prefix counted by the round/γ measures. Equals
  // steps().size() when not all ports idle.
  std::size_t active_prefix_length() const;

  // γ: the largest gap between consecutive compute steps of any process
  // (including the gap from time 0 to the first step), over the active
  // prefix. This is the per-computation parameter of Section 2.3 used by the
  // sporadic bounds. nullopt for a trace with no compute steps.
  std::optional<Duration> gamma() const;

  // Structural sanity independent of any timing model: nondecreasing times,
  // idle states absorbing, MPM deliveries referencing sent messages and
  // preceding receipts. Returns an error description or nullopt if valid.
  std::optional<std::string> structural_error() const;

  std::string to_string(std::size_t max_steps = 50) const;

 private:
  Substrate substrate_;
  std::int32_t num_processes_;
  std::int32_t num_ports_;
  std::vector<StepRecord> steps_;
  std::vector<MessageRecord> messages_;
};

}  // namespace sesp
