#pragma once

// Plain-text serialization of timed computations (and the timing
// constraints they were checked against). Enables storing adversary-found
// counterexamples as files, re-validating them offline (see
// adversary/certificate.hpp), and diffing traces across runs. The format is
// line-oriented CSV with exact rational times — round-tripping is lossless.
//
//   sesp-trace v1
//   meta,<substrate>,<num_processes>,<num_ports>
//   step,<kind>,<process>,<time>,<port>,<var>,<delivered>,<idle>,<dig_b>,<dig_a>
//   msg,<sender>,<recipient>,<send>,<deliver>,<receive>,<session>,<steps>,<done>

#include <optional>
#include <string>

#include "model/timed_computation.hpp"
#include "timing/constraints.hpp"

namespace sesp {

std::string to_text(const TimedComputation& trace);

// Returns nullopt and fills *error on malformed input.
std::optional<TimedComputation> trace_from_text(const std::string& text,
                                                std::string* error);

// Constraints serialization (one line):
//   constraints,<model>,<c1>,<c2>,<d1>,<d2>[,<period>...]
std::string to_text(const TimingConstraints& constraints);
std::optional<TimingConstraints> constraints_from_text(const std::string& text,
                                                       std::string* error);

// Exact rational round-trip helpers ("7/2", "-3").
std::string ratio_to_text(const Ratio& r);
std::optional<Ratio> ratio_from_text(const std::string& text);

}  // namespace sesp
