#pragma once

// Identifier vocabulary shared by every module. Matches the paper's Section 2:
// a system has a finite set P of processes and X of shared variables; the
// message-passing specialization adds a distinguished network process N and a
// message multiset `net`.

#include <cstdint>

namespace sesp {

using ProcessId = std::int32_t;
using VarId = std::int32_t;
using MsgId = std::int64_t;
using PortIndex = std::int32_t;

// The network process N of the MPM (Section 2.1.2). Regular processes are
// numbered 0..|R|-1; in the SMM, relay processes of the broadcast tree are
// numbered after the port processes.
inline constexpr ProcessId kNetworkProcess = -1;

inline constexpr PortIndex kNoPort = -1;
inline constexpr VarId kNoVar = -1;
inline constexpr MsgId kNoMsg = -1;

// The (s, n)-session problem instance plus the shared-variable access bound b
// (Section 2.1.1; b is only meaningful in the SMM).
struct ProblemSpec {
  std::int64_t s = 2;  // required number of disjoint sessions
  std::int32_t n = 2;  // number of ports / port processes
  std::int32_t b = 2;  // max processes per shared variable (SMM)
};

}  // namespace sesp
