#include "model/step_record.hpp"

#include <sstream>

namespace sesp {

std::string StepRecord::to_string() const {
  std::ostringstream os;
  if (kind == StepKind::kDeliver) {
    os << "[t=" << time << " N delivers msg#" << delivered << "]";
    return os.str();
  }
  os << "[t=" << time << " p" << process;
  if (port != kNoPort) os << " port" << port;
  if (var != kNoVar) os << " var" << var;
  if (idle_after) os << " ->idle";
  os << "]";
  return os.str();
}

}  // namespace sesp
