#pragma once

// Semi-synchronous SMM algorithm (Section 5: the [4] algorithm with send/
// receive replaced by the Section-3 tree broadcast). Two strategies matching
// the branches of the upper bound
//     min{(floor(c2/c1)+1)*c2, O(log_b n)*c2} * (s-1) + c2:
//
//  * Step counting: B = floor(c2/c1)+1 port steps per session, no
//    communication (identical reasoning to the MPM variant: B*c1 > c2, and
//    all port processes take only port steps).
//  * Communication: knowledge rounds through the tree, one round trip per
//    session — O(log_b n) steps each.
//
// The kAuto factory compares the two predicted per-session costs using the
// tree latency constant for the instance's (n, b).

#include "smm/algorithm.hpp"

namespace sesp {

enum class SmmSemiSyncStrategy { kAuto, kStepCount, kCommunicate };

class SemiSyncSmmFactory final : public SmmAlgorithmFactory {
 public:
  explicit SemiSyncSmmFactory(
      SmmSemiSyncStrategy strategy = SmmSemiSyncStrategy::kAuto)
      : strategy_(strategy) {}

  std::unique_ptr<SmmPortAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override;

  static SmmSemiSyncStrategy pick(const ProblemSpec& spec,
                                  const TimingConstraints& constraints);

 private:
  SmmSemiSyncStrategy strategy_;
};

// Step-counting core (shared with the broken variants): only port steps,
// per_session * (s-1) + 1 of them, then idle.
std::unique_ptr<SmmPortAlgorithm> make_step_count_smm(
    std::int64_t s, std::int64_t per_session);

// Knowledge-round core (shared with the asynchronous algorithm): one tree
// round trip per session.
std::unique_ptr<SmmPortAlgorithm> make_round_based_smm(ProcessId self,
                                                       std::int64_t s,
                                                       std::int32_t n);

// The tree latency constant for an (n, b) instance, in relay step periods —
// used by kAuto and by the bound formulas in analysis::bounds.
std::int64_t smm_tree_latency_steps(std::int32_t n, std::int32_t b);

}  // namespace sesp
