#pragma once

// Cheating SMM algorithms — falsification targets for the executable lower
// bounds (Theorem 4.3's contamination adversary, Theorem 5.1's retimer).

#include "smm/algorithm.hpp"

namespace sesp {

// A(p) without listening: s port steps, idle. The slow-one / contamination
// adversaries of Section 4 produce admissible periodic computations where it
// misses sessions.
class NoWaitPeriodicSmmFactory final : public SmmAlgorithmFactory {
 public:
  std::unique_ptr<SmmPortAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "broken-no-wait-periodic-smm"; }
};

// Step counting with floor(c2/(2*c1)) port steps per session — exactly the
// Theorem 5.1 lower-bound threshold, which the retimer defeats.
class HalfSlackSmmFactory final : public SmmAlgorithmFactory {
 public:
  std::unique_ptr<SmmPortAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "broken-half-slack-smm"; }
};

// A(p) whose waiting phase does tree accesses only (no interleaved port
// steps). The ablation for the port/tree alternation: with heterogeneous
// periods the fast processes stop contributing port steps while the slow
// one is still working through its s-1 accesses, and sessions are lost.
class TreeOnlyWaitPeriodicSmmFactory final : public SmmAlgorithmFactory {
 public:
  std::unique_ptr<SmmPortAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override {
    return "ablation-tree-only-wait-periodic-smm";
  }
};

// Step counting with an arbitrary (wrong) per-session count.
class TooFewStepsSmmFactory final : public SmmAlgorithmFactory {
 public:
  explicit TooFewStepsSmmFactory(std::int64_t steps_per_session)
      : steps_per_session_(steps_per_session) {}

  std::unique_ptr<SmmPortAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "broken-too-few-steps-smm"; }

 private:
  std::int64_t steps_per_session_;
};

}  // namespace sesp
