#include "algorithms/smm/periodic_alg.hpp"

namespace sesp {

namespace {

// Phase 1: s-1 consecutive port steps, then advertise "done".
// Phase 2: alternate tree and port accesses until every other process is
//   known done. The interleaved port steps mirror the MPM variant, where
//   every waiting step is a port step: sessions keep closing on the slowest
//   process's port accesses while the fast processes wait.
// Phase 3: the first port access after hearing everyone completes session s;
//   idle there.
class PeriodicSmm final : public SmmPortAlgorithm {
 public:
  PeriodicSmm(ProcessId self, std::int64_t s, std::int32_t n)
      : self_(self), s_(s), n_(n), done_(s <= 1) {}

  SmmChoice choose() const override {
    if (s_ <= 1) return SmmChoice::kPort;  // degenerate: one step, no comms
    if (port_steps_ < s_ - 1) return SmmChoice::kPort;  // phase 1
    if (heard_all_) return SmmChoice::kPort;            // phase 3
    return next_is_tree_ ? SmmChoice::kTree : SmmChoice::kPort;  // phase 2
  }

  void on_port_access() override {
    ++port_steps_;
    if (s_ <= 1) {
      idle_ = true;
      return;
    }
    if (port_steps_ >= s_ - 1) done_ = true;
    if (heard_all_) idle_ = true;  // phase-3 step taken
    next_is_tree_ = true;
  }

  PortInfo advertised() const override {
    return PortInfo{port_steps_, 0, done_};
  }

  void on_tree_snapshot(const Knowledge& snapshot) override {
    know_.merge(snapshot);
    if (know_.all_done(n_, self_)) heard_all_ = true;
    next_is_tree_ = false;
  }

  bool is_idle() const override { return idle_; }

 private:
  ProcessId self_;
  std::int64_t s_;
  std::int32_t n_;
  std::int64_t port_steps_ = 0;
  bool done_;               // taken the s-1 port steps
  bool heard_all_ = false;  // every other process known done
  bool next_is_tree_ = true;
  Knowledge know_;
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<SmmPortAlgorithm> PeriodicSmmFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return std::make_unique<PeriodicSmm>(p, spec.s, spec.n);
}

}  // namespace sesp
