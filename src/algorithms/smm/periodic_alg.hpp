#pragma once

// A(p) for the periodic SMM (Section 4). Phase 1: s-1 port steps. Phase 2:
// tree accesses advertising "done" (the broadcast of Section 3) until the
// merged knowledge shows every other port process done. Phase 3: one more
// port step, then idle. Running time s*c_max + O(log_b n)*c_max
// (Theorem 4.1); the concrete constant is the tree's latency bound.

#include "smm/algorithm.hpp"

namespace sesp {

class PeriodicSmmFactory final : public SmmAlgorithmFactory {
 public:
  std::unique_ptr<SmmPortAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "A(p)-smm"; }
};

}  // namespace sesp
