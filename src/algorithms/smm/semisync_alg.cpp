#include "algorithms/smm/semisync_alg.hpp"

#include <algorithm>

#include "smm/shared_memory.hpp"
#include "smm/tree_network.hpp"

namespace sesp {

namespace {

class StepCountSmm final : public SmmPortAlgorithm {
 public:
  StepCountSmm(std::int64_t s, std::int64_t per_session)
      : target_(std::max<std::int64_t>(per_session * (s - 1) + 1, 1)) {}

  SmmChoice choose() const override { return SmmChoice::kPort; }

  void on_port_access() override {
    ++steps_;
    if (steps_ >= target_) idle_ = true;
  }

  PortInfo advertised() const override { return PortInfo{steps_, 0, idle_}; }
  void on_tree_snapshot(const Knowledge& /*snapshot*/) override {}
  bool is_idle() const override { return idle_; }

 private:
  std::int64_t target_;
  std::int64_t steps_ = 0;
  bool idle_ = false;
};

// One session per knowledge round: port step for round r, then tree accesses
// until every other process is known to have completed round r, then round
// r+1. Advertises session = number of completed rounds.
class RoundBasedSmm final : public SmmPortAlgorithm {
 public:
  RoundBasedSmm(ProcessId self, std::int64_t s, std::int32_t n)
      : self_(self), s_(s), n_(n) {}

  SmmChoice choose() const override {
    return pending_port_ ? SmmChoice::kPort : SmmChoice::kTree;
  }

  void on_port_access() override {
    pending_port_ = false;
    ++completed_rounds_;
    if (completed_rounds_ >= s_) idle_ = true;
  }

  PortInfo advertised() const override {
    return PortInfo{completed_rounds_, completed_rounds_,
                    completed_rounds_ >= s_};
  }

  void on_tree_snapshot(const Knowledge& snapshot) override {
    know_.merge(snapshot);
    if (completed_rounds_ < s_ &&
        know_.all_have_session(n_, completed_rounds_, self_))
      pending_port_ = true;
  }

  bool is_idle() const override { return idle_; }

 private:
  ProcessId self_;
  std::int64_t s_;
  std::int32_t n_;
  std::int64_t completed_rounds_ = 0;
  bool pending_port_ = true;  // round 1 needs no waiting
  Knowledge know_;
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<SmmPortAlgorithm> make_step_count_smm(
    std::int64_t s, std::int64_t per_session) {
  return std::make_unique<StepCountSmm>(s, per_session);
}

std::unique_ptr<SmmPortAlgorithm> make_round_based_smm(ProcessId self,
                                                       std::int64_t s,
                                                       std::int32_t n) {
  return std::make_unique<RoundBasedSmm>(self, s, n);
}

std::int64_t smm_tree_latency_steps(std::int32_t n, std::int32_t b) {
  SharedMemory scratch(std::max(b, 2));
  TreeNetwork tree(n, std::max(b, 2), scratch, n);
  return tree.latency_steps_bound();
}

SmmSemiSyncStrategy SemiSyncSmmFactory::pick(
    const ProblemSpec& spec, const TimingConstraints& constraints) {
  const std::int64_t B = (constraints.c2 / constraints.c1).floor() + 1;
  // Communication costs a tree round trip plus the bracketing port/tree
  // steps of the leaf itself.
  const std::int64_t comm = smm_tree_latency_steps(spec.n, spec.b) + 4;
  return B <= comm ? SmmSemiSyncStrategy::kStepCount
                   : SmmSemiSyncStrategy::kCommunicate;
}

std::unique_ptr<SmmPortAlgorithm> SemiSyncSmmFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& constraints) const {
  SmmSemiSyncStrategy strategy = strategy_;
  if (strategy == SmmSemiSyncStrategy::kAuto) strategy = pick(spec, constraints);
  if (strategy == SmmSemiSyncStrategy::kStepCount) {
    const std::int64_t B = (constraints.c2 / constraints.c1).floor() + 1;
    return make_step_count_smm(spec.s, B);
  }
  return make_round_based_smm(p, spec.s, spec.n);
}

const char* SemiSyncSmmFactory::name() const {
  switch (strategy_) {
    case SmmSemiSyncStrategy::kAuto: return "semisync-smm(auto)";
    case SmmSemiSyncStrategy::kStepCount: return "semisync-smm(steps)";
    case SmmSemiSyncStrategy::kCommunicate: return "semisync-smm(comm)";
  }
  return "semisync-smm";
}

}  // namespace sesp
