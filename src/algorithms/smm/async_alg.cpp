#include "algorithms/smm/async_alg.hpp"

#include "algorithms/smm/semisync_alg.hpp"

namespace sesp {

std::unique_ptr<SmmPortAlgorithm> AsyncSmmFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return make_round_based_smm(p, spec.s, spec.n);
}

}  // namespace sesp
