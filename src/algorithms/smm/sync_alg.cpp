#include "algorithms/smm/sync_alg.hpp"

namespace sesp {

namespace {

class SyncSmm final : public SmmPortAlgorithm {
 public:
  explicit SyncSmm(std::int64_t s) : s_(s) {}

  SmmChoice choose() const override { return SmmChoice::kPort; }

  void on_port_access() override {
    ++steps_;
    if (steps_ >= s_) idle_ = true;
  }

  PortInfo advertised() const override {
    return PortInfo{steps_, 0, idle_};
  }

  void on_tree_snapshot(const Knowledge& /*snapshot*/) override {}

  bool is_idle() const override { return idle_; }

 private:
  std::int64_t s_;
  std::int64_t steps_ = 0;
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<SmmPortAlgorithm> SyncSmmFactory::create(
    ProcessId /*p*/, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return std::make_unique<SyncSmm>(spec.s);
}

}  // namespace sesp
