#pragma once

// Synchronous SMM algorithm ([2], Table 1 row 1): s port steps in lockstep,
// no communication, time exactly s * c2.

#include "smm/algorithm.hpp"

namespace sesp {

class SyncSmmFactory final : public SmmAlgorithmFactory {
 public:
  std::unique_ptr<SmmPortAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "sync-smm"; }
};

}  // namespace sesp
