#pragma once

// Asynchronous SMM algorithm ([2], Table 1 bottom-left): the knowledge-round
// algorithm, one tree round trip per session, measured in rounds —
// (s-1) * O(log_b n) against the matching lower bound.

#include "smm/algorithm.hpp"

namespace sesp {

class AsyncSmmFactory final : public SmmAlgorithmFactory {
 public:
  std::unique_ptr<SmmPortAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "async-smm"; }
};

}  // namespace sesp
