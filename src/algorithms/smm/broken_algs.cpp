#include "algorithms/smm/broken_algs.hpp"

#include <algorithm>

#include "algorithms/smm/semisync_alg.hpp"

namespace sesp {

namespace {

// A(p) without the waiting-phase alternation: phase 2 is tree-only.
class TreeOnlyWaitPeriodicSmm final : public SmmPortAlgorithm {
 public:
  TreeOnlyWaitPeriodicSmm(ProcessId self, std::int64_t s, std::int32_t n)
      : self_(self), s_(s), n_(n), done_(s <= 1) {}

  SmmChoice choose() const override {
    if (s_ <= 1) return SmmChoice::kPort;
    if (port_steps_ < s_ - 1) return SmmChoice::kPort;
    if (!heard_all_) return SmmChoice::kTree;
    return SmmChoice::kPort;
  }

  void on_port_access() override {
    ++port_steps_;
    if (s_ <= 1) {
      idle_ = true;
      return;
    }
    if (port_steps_ >= s_ - 1) done_ = true;
    if (heard_all_) idle_ = true;
  }

  PortInfo advertised() const override {
    return PortInfo{port_steps_, 0, done_};
  }

  void on_tree_snapshot(const Knowledge& snapshot) override {
    know_.merge(snapshot);
    if (know_.all_done(n_, self_)) heard_all_ = true;
  }

  bool is_idle() const override { return idle_; }

 private:
  ProcessId self_;
  std::int64_t s_;
  std::int32_t n_;
  std::int64_t port_steps_ = 0;
  bool done_;
  bool heard_all_ = false;
  Knowledge know_;
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<SmmPortAlgorithm> TreeOnlyWaitPeriodicSmmFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return std::make_unique<TreeOnlyWaitPeriodicSmm>(p, spec.s, spec.n);
}

std::unique_ptr<SmmPortAlgorithm> NoWaitPeriodicSmmFactory::create(
    ProcessId /*p*/, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  // s port steps with no communication == step counting with one step per
  // session.
  return make_step_count_smm(spec.s, 1);
}

std::unique_ptr<SmmPortAlgorithm> HalfSlackSmmFactory::create(
    ProcessId /*p*/, const ProblemSpec& spec,
    const TimingConstraints& constraints) const {
  const std::int64_t per_session =
      std::max<std::int64_t>((constraints.c2 / (constraints.c1 * 2)).floor(),
                             1);
  return make_step_count_smm(spec.s, per_session);
}

std::unique_ptr<SmmPortAlgorithm> TooFewStepsSmmFactory::create(
    ProcessId /*p*/, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return make_step_count_smm(spec.s, steps_per_session_);
}

}  // namespace sesp
