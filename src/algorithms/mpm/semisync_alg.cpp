#include "algorithms/mpm/semisync_alg.hpp"

#include <algorithm>

#include "algorithms/mpm/async_alg.hpp"

namespace sesp {

namespace {

class StepCountMpm final : public MpmAlgorithm {
 public:
  StepCountMpm(std::int64_t s, std::int64_t per_session)
      : target_(std::max<std::int64_t>(per_session * (s - 1) + 1, 1)) {}

  MpmStepResult on_step(std::span<const MpmMessage> /*received*/) override {
    ++steps_;
    MpmStepResult r;
    if (steps_ >= target_) {
      r.idle = true;
      idle_ = true;
    }
    return r;
  }

  bool is_idle() const override { return idle_; }

 private:
  std::int64_t target_;
  std::int64_t steps_ = 0;
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<MpmAlgorithm> make_step_count_mpm(std::int64_t s,
                                                  std::int64_t per_session) {
  return std::make_unique<StepCountMpm>(s, per_session);
}

SemiSyncStrategy SemiSyncMpmFactory::pick(
    const TimingConstraints& constraints) {
  // Per-session costs of the two branches of the min.
  const Ratio b_steps = Ratio((constraints.c2 / constraints.c1).floor() + 1);
  const Ratio step_cost = b_steps * constraints.c2;
  const Ratio comm_cost = constraints.d2 + constraints.c2;
  return step_cost <= comm_cost ? SemiSyncStrategy::kStepCount
                                : SemiSyncStrategy::kCommunicate;
}

std::unique_ptr<MpmAlgorithm> SemiSyncMpmFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& constraints) const {
  SemiSyncStrategy strategy = strategy_;
  if (strategy == SemiSyncStrategy::kAuto) strategy = pick(constraints);
  if (strategy == SemiSyncStrategy::kStepCount) {
    const std::int64_t B = (constraints.c2 / constraints.c1).floor() + 1;
    return make_step_count_mpm(spec.s, B);
  }
  return make_round_based_mpm(p, spec.s, spec.n);
}

const char* SemiSyncMpmFactory::name() const {
  switch (strategy_) {
    case SemiSyncStrategy::kAuto: return "semisync-mpm(auto)";
    case SemiSyncStrategy::kStepCount: return "semisync-mpm(steps)";
    case SemiSyncStrategy::kCommunicate: return "semisync-mpm(comm)";
  }
  return "semisync-mpm";
}

}  // namespace sesp
