#pragma once

// A(sp), the sporadic MPM algorithm of Section 6, transcribed from the
// paper's pseudocode. Constants: u = d2 - d1, B = floor(u/c1) + 1 (so that
// B * c1 > u). Each process broadcasts m(i, session) at every step. Two ways
// to learn that a new session happened:
//
//  condition 1: m(j, session) received from every j in [n] — everyone
//    reached the current session value, so their broadcasts for it (each a
//    port step after the previous session) complete another session;
//  condition 2: count > B steps have elapsed since the last session update
//    (more than u time, by the step-time lower bound), after which a message
//    from every process collected in temp_buf must have been *sent* after
//    the previous session — the timing-inference trick the sporadic model
//    enables.
//
// The process idles once session reaches s-1 (its broadcast of m(i, s-1)
// still goes out on that final step). Upper bound (Theorem 6.1):
// min{(floor(u/c1)+3)*gamma + u, d2+gamma}*(s-1) + gamma, with gamma the
// computation's largest step gap.

#include "mpm/algorithm.hpp"

namespace sesp {

class SporadicMpmFactory final : public MpmAlgorithmFactory {
 public:
  // `b_override` replaces the paper's B when >= 0 — used by the broken
  // variant to demonstrate the Theorem 6.5 lower bound (B too small breaks
  // the timing inference). `enable_condition2` turns the elapsed-time
  // inference off (condition 1 only) — still correct but slower when
  // u << d2; the bench_ablation experiment measures the difference.
  explicit SporadicMpmFactory(std::int64_t b_override = -1,
                              bool enable_condition2 = true)
      : b_override_(b_override), enable_condition2_(enable_condition2) {}

  std::unique_ptr<MpmAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override {
    return enable_condition2_ ? "A(sp)-mpm" : "A(sp)-mpm(no-cond2)";
  }

 private:
  std::int64_t b_override_;
  bool enable_condition2_;
};

}  // namespace sesp
