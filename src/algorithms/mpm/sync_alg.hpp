#pragma once

// Synchronous MPM algorithm (Table 1 row 1). With lockstep steps every c2,
// no communication is needed: each process takes s steps (each a port step)
// and idles. Running time exactly s * c2, matching the tight bound from [2]
// carried over to message passing.

#include "mpm/algorithm.hpp"

namespace sesp {

class SyncMpmFactory final : public MpmAlgorithmFactory {
 public:
  std::unique_ptr<MpmAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "sync-mpm"; }
};

}  // namespace sesp
