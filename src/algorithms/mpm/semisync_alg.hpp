#pragma once

// Semi-synchronous MPM algorithm (adapted from Attiya & Mavronicolas [4],
// Table 1 row 3). Two interchangeable strategies, each matching one branch
// of the min in the upper bound
//     min{(floor(c2/c1)+1)*c2, d2+c2} * (s-1) + c2:
//
//  * Step counting: B = floor(c2/c1)+1 own steps span time > c2, in which
//    every other process must have taken a step; B steps per session with no
//    communication at all. Total B(s-1)+1 steps.
//  * Communication: the round-based algorithm (one broadcast round trip per
//    session), costing d2 + c2 per session.
//
// The default factory picks whichever branch the constants make cheaper,
// exactly as the min suggests; the explicit factories let benches measure
// both branches and locate the crossover.

#include "mpm/algorithm.hpp"

namespace sesp {

enum class SemiSyncStrategy {
  kAuto,         // min of the two predicted per-session costs
  kStepCount,    // (floor(c2/c1)+1)*c2 per session
  kCommunicate,  // d2 + c2 per session
};

class SemiSyncMpmFactory final : public MpmAlgorithmFactory {
 public:
  explicit SemiSyncMpmFactory(
      SemiSyncStrategy strategy = SemiSyncStrategy::kAuto)
      : strategy_(strategy) {}

  std::unique_ptr<MpmAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override;

  // The branch the constants select under kAuto.
  static SemiSyncStrategy pick(const TimingConstraints& constraints);

 private:
  SemiSyncStrategy strategy_;
};

// Step-counting core, shared with the broken variants: takes
// per_session * (s-1) + 1 steps, then idles. Correct iff
// per_session * c1 > c2.
std::unique_ptr<MpmAlgorithm> make_step_count_mpm(std::int64_t s,
                                                  std::int64_t per_session);

}  // namespace sesp
