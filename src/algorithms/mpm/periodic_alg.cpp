#include "algorithms/mpm/periodic_alg.hpp"

#include <algorithm>
#include <vector>

namespace sesp {

namespace {

class PeriodicMpm final : public MpmAlgorithm {
 public:
  PeriodicMpm(ProcessId self, std::int64_t s, std::int32_t n)
      : self_(self),
        s_(s),
        n_(n),
        broadcast_at_(std::max<std::int64_t>(s - 1, 1)),
        heard_done_(static_cast<std::size_t>(n), false) {}

  MpmStepResult on_step(std::span<const MpmMessage> received) override {
    if (s_ <= 1) {
      // Degenerate instance: one session forms once every process takes a
      // step; no coordination (or communication) is needed.
      MpmStepResult r;
      r.idle = true;
      idle_ = true;
      return r;
    }
    for (const MpmMessage& m : received) {
      if (m.done && m.sender >= 0 && m.sender < n_)
        heard_done_[static_cast<std::size_t>(m.sender)] = true;
    }
    ++steps_;

    MpmStepResult r;
    if (steps_ == broadcast_at_) {
      r.broadcast = true;
      r.message = MpmMessage{self_, 0, steps_, true};
    }
    // Idle once every *other* process is known to have taken its s-1 port
    // steps and this process has taken at least s steps of its own (its
    // s-1 steps plus the "one more" of the algorithm text).
    if (heard_all_others() && steps_ >= std::max<std::int64_t>(s_, 1)) {
      r.idle = true;
      idle_ = true;
    }
    return r;
  }

  bool is_idle() const override { return idle_; }

 private:
  bool heard_all_others() const {
    for (std::int32_t j = 0; j < n_; ++j) {
      if (j == self_) continue;
      if (!heard_done_[static_cast<std::size_t>(j)]) return false;
    }
    return true;
  }

  ProcessId self_;
  std::int64_t s_;
  std::int32_t n_;
  std::int64_t broadcast_at_;
  std::vector<bool> heard_done_;
  std::int64_t steps_ = 0;
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<MpmAlgorithm> PeriodicMpmFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return std::make_unique<PeriodicMpm>(p, spec.s, spec.n);
}

}  // namespace sesp
