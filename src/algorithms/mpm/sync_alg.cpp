#include "algorithms/mpm/sync_alg.hpp"

namespace sesp {

namespace {

class SyncMpm final : public MpmAlgorithm {
 public:
  explicit SyncMpm(std::int64_t s) : s_(s) {}

  MpmStepResult on_step(std::span<const MpmMessage> /*received*/) override {
    ++steps_;
    MpmStepResult r;
    r.idle = steps_ >= s_;
    idle_ = r.idle;
    return r;
  }

  bool is_idle() const override { return idle_; }

 private:
  std::int64_t s_;
  std::int64_t steps_ = 0;
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<MpmAlgorithm> SyncMpmFactory::create(
    ProcessId /*p*/, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return std::make_unique<SyncMpm>(spec.s);
}

}  // namespace sesp
