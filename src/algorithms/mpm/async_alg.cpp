#include "algorithms/mpm/async_alg.hpp"

#include <vector>

namespace sesp {

namespace {

class RoundBasedMpm final : public MpmAlgorithm {
 public:
  RoundBasedMpm(ProcessId self, std::int64_t s, std::int32_t n)
      : self_(self), s_(s), n_(n),
        max_session_(static_cast<std::size_t>(n), 0) {}

  MpmStepResult on_step(std::span<const MpmMessage> received) override {
    for (const MpmMessage& m : received) {
      if (m.sender < 0 || m.sender >= n_) continue;
      auto& known = max_session_[static_cast<std::size_t>(m.sender)];
      if (m.session > known) known = m.session;
    }

    MpmStepResult r;
    // At most one round advances per step: one step is one port access and
    // can witness only one session.
    if (round_ <= s_ && others_reached(round_ - 1)) {
      r.broadcast = true;
      r.message = MpmMessage{self_, round_, 0, false};
      ++round_;
      if (round_ > s_) {
        r.idle = true;
        idle_ = true;
      }
    }
    return r;
  }

  bool is_idle() const override { return idle_; }

 private:
  bool others_reached(std::int64_t round) const {
    if (round <= 0) return true;
    for (std::int32_t j = 0; j < n_; ++j) {
      if (j == self_) continue;
      if (max_session_[static_cast<std::size_t>(j)] < round) return false;
    }
    return true;
  }

  ProcessId self_;
  std::int64_t s_;
  std::int32_t n_;
  std::vector<std::int64_t> max_session_;
  std::int64_t round_ = 1;  // next round to perform
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<MpmAlgorithm> make_round_based_mpm(ProcessId self,
                                                   std::int64_t s,
                                                   std::int32_t n) {
  return std::make_unique<RoundBasedMpm>(self, s, n);
}

std::unique_ptr<MpmAlgorithm> AsyncMpmFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return make_round_based_mpm(p, spec.s, spec.n);
}

}  // namespace sesp
