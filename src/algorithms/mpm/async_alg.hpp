#pragma once

// Asynchronous MPM algorithm (the upper bound of [4], Table 1 bottom-right):
// one communication round per session. A process's round-r port step doubles
// as its broadcast of m(i, r); it advances to round r+1 only once it knows
// every process completed round r, so all round-(r+1) steps follow all
// round-r steps and s rounds give s disjoint sessions. Because delays can
// reorder messages, knowledge is kept monotone: m(j, v) implies j finished
// every round <= v.
//
// Running time (s-1)(d2 + c2) + c2 in the asynchronous MPM of [4]
// (c1 = d1 = 0, c2/d2 finite); the same class is the communication strategy
// of the semi-synchronous algorithm.

#include "mpm/algorithm.hpp"

namespace sesp {

class AsyncMpmFactory final : public MpmAlgorithmFactory {
 public:
  std::unique_ptr<MpmAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "async-mpm"; }
};

// Shared with semisync_alg.cpp: the concrete round-based algorithm.
std::unique_ptr<MpmAlgorithm> make_round_based_mpm(ProcessId self,
                                                   std::int64_t s,
                                                   std::int32_t n);

}  // namespace sesp
