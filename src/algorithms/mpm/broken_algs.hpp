#pragma once

// Deliberately incorrect algorithms: they terminate faster than the lower
// bounds allow, so an adversary/retimer must be able to exhibit an
// admissible computation with fewer than s sessions against them. They are
// the positive controls for the executable lower-bound constructions
// (Theorems 4.2, 4.3, 5.1, 6.5).

#include <cstdint>

#include "mpm/algorithm.hpp"

namespace sesp {

// Idles after a fixed number of steps, no communication. With
// steps_per_session = floor(c2/(2*c1)) it sits exactly at the
// semi-synchronous lower-bound threshold of Theorem 5.1 (correct step
// counting needs floor(c2/c1)+1); with small constants it also cheats the
// periodic model, which the slow-one adversary of Theorem 4.2 exposes.
class TooFewStepsMpmFactory final : public MpmAlgorithmFactory {
 public:
  // total steps = steps_per_session * (s-1) + 1
  explicit TooFewStepsMpmFactory(std::int64_t steps_per_session)
      : steps_per_session_(steps_per_session) {}

  std::unique_ptr<MpmAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "broken-too-few-steps-mpm"; }

 private:
  std::int64_t steps_per_session_;
};

// Semi-synchronous step counting with the paper's correct B computed from
// the *wrong* constant: uses floor(c2/(2*c1)) per session, i.e. trusts that
// half the real slack suffices.
class HalfSlackMpmFactory final : public MpmAlgorithmFactory {
 public:
  std::unique_ptr<MpmAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "broken-half-slack-mpm"; }
};

// A(p) without the wait: idles as soon as it has taken its own s steps,
// never listening for the other processes — the periodic lower bound's
// max{., d2} term and the slow-one adversary both catch it.
class NoWaitPeriodicMpmFactory final : public MpmAlgorithmFactory {
 public:
  std::unique_ptr<MpmAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "broken-no-wait-periodic-mpm"; }
};

// A(sp) with B = floor(u/(4*c1)) instead of floor(u/c1)+1: the timing
// inference of condition 2 no longer holds (B*c1 <= u/4 < u), matching the
// Theorem 6.5 lower-bound scale.
class ImpatientSporadicMpmFactory final : public MpmAlgorithmFactory {
 public:
  std::unique_ptr<MpmAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "broken-impatient-sporadic-mpm"; }
};

}  // namespace sesp
