#include "algorithms/mpm/broken_algs.hpp"

#include <algorithm>

#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"

namespace sesp {

namespace {

class NoWaitPeriodicMpm final : public MpmAlgorithm {
 public:
  explicit NoWaitPeriodicMpm(std::int64_t s)
      : target_(std::max<std::int64_t>(s, 1)) {}

  MpmStepResult on_step(std::span<const MpmMessage> /*received*/) override {
    ++steps_;
    MpmStepResult r;
    if (steps_ >= target_) {
      r.idle = true;
      idle_ = true;
    }
    return r;
  }

  bool is_idle() const override { return idle_; }

 private:
  std::int64_t target_;
  std::int64_t steps_ = 0;
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<MpmAlgorithm> TooFewStepsMpmFactory::create(
    ProcessId /*p*/, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return make_step_count_mpm(spec.s, steps_per_session_);
}

std::unique_ptr<MpmAlgorithm> HalfSlackMpmFactory::create(
    ProcessId /*p*/, const ProblemSpec& spec,
    const TimingConstraints& constraints) const {
  const std::int64_t per_session =
      std::max<std::int64_t>((constraints.c2 / (constraints.c1 * 2)).floor(),
                             1);
  return make_step_count_mpm(spec.s, per_session);
}

std::unique_ptr<MpmAlgorithm> NoWaitPeriodicMpmFactory::create(
    ProcessId /*p*/, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return std::make_unique<NoWaitPeriodicMpm>(spec.s);
}

std::unique_ptr<MpmAlgorithm> ImpatientSporadicMpmFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& constraints) const {
  const Duration u = constraints.delay_uncertainty();
  const std::int64_t small_b =
      std::max<std::int64_t>((u / (constraints.c1 * 4)).floor(), 0);
  return SporadicMpmFactory(small_b).create(p, spec, constraints);
}

}  // namespace sesp
