#include "algorithms/mpm/sporadic_alg.hpp"

#include <vector>

namespace sesp {

namespace {

class SporadicMpm final : public MpmAlgorithm {
 public:
  SporadicMpm(ProcessId self, std::int64_t s, std::int32_t n, std::int64_t B,
              bool enable_condition2)
      : self_(self), s_(s), n_(n), B_(B),
        enable_condition2_(enable_condition2),
        seen_(static_cast<std::size_t>(n) *
                  static_cast<std::size_t>(s > 0 ? s : 0),
              false),
        temp_has_(static_cast<std::size_t>(n), false) {}

  MpmStepResult on_step(std::span<const MpmMessage> received) override {
    MpmStepResult r;
    if (session_ >= s_ - 1) {
      // while-condition already false: the process idles without further
      // broadcasts (covers s == 1, where the loop body never runs).
      r.idle = true;
      idle_ = true;
      return r;
    }

    // read buf_i; msg_buf := msg_buf ∪ M. msg_buf is only ever queried for
    // membership of (j, session_) with session_ in [0, s), so a flat n x s
    // seen-matrix represents it exactly (out-of-range sessions can never
    // match a query and need not be stored).
    for (const MpmMessage& m : received) {
      if (m.sender >= 0 && m.sender < n_ && m.session >= 0 && m.session < s_)
        seen_[static_cast<std::size_t>(m.sender) *
                  static_cast<std::size_t>(s_) +
              static_cast<std::size_t>(m.session)] = true;
    }

    if (condition1()) {
      count_ = 0;
      ++session_;
    } else if (enable_condition2_ && count_ > B_) {
      for (const MpmMessage& m : received) {
        if (m.sender >= 0 && m.sender < n_)
          temp_has_[static_cast<std::size_t>(m.sender)] = true;
      }
      if (condition2()) {
        count_ = 0;
        ++session_;
        temp_has_.assign(temp_has_.size(), false);
      }
    }

    r.broadcast = true;
    r.message = MpmMessage{self_, session_, 0, false};
    ++count_;

    if (session_ >= s_ - 1) {
      r.idle = true;
      idle_ = true;
    }
    return r;
  }

  bool is_idle() const override { return idle_; }

 private:
  // for all j in [n], m(j, session) in msg_buf
  bool condition1() const {
    for (std::int32_t j = 0; j < n_; ++j)
      if (!seen_[static_cast<std::size_t>(j) * static_cast<std::size_t>(s_) +
                 static_cast<std::size_t>(session_)])
        return false;
    return true;
  }

  // for all j in [n], at least one m(j, *) in temp_buf
  bool condition2() const {
    for (std::int32_t j = 0; j < n_; ++j)
      if (!temp_has_[static_cast<std::size_t>(j)]) return false;
    return true;
  }

  ProcessId self_;
  std::int64_t s_;
  std::int32_t n_;
  std::int64_t B_;
  bool enable_condition2_;

  std::int64_t count_ = 0;
  std::int64_t session_ = 0;
  std::vector<char> seen_;      // msg_buf as an n x s seen-matrix
  std::vector<bool> temp_has_;  // temp_buf, reduced to "has m(j, *)"
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<MpmAlgorithm> SporadicMpmFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& constraints) const {
  std::int64_t B = b_override_;
  if (B < 0) {
    const Duration u = constraints.delay_uncertainty();
    B = (u / constraints.c1).floor() + 1;
  }
  return std::make_unique<SporadicMpm>(p, spec.s, spec.n, B,
                                       enable_condition2_);
}

}  // namespace sesp
