#pragma once

// A(p) for the periodic MPM (Section 4). Each port process takes s-1 port
// steps and, at its (s-1)-th step, broadcasts that fact; it idles once it
// has heard the fact from every other process and has taken at least one
// more port step. Running time s*c_max + d2 (Theorem 4.1, with the paper's
// d = d2), against the lower bound max{s*c_max, d2} (Theorem 4.2).
//
// For s == 1 the "s-1 port steps" phase is empty; the implementation then
// broadcasts at the first step and idles once it has both heard from
// everyone and stepped at least once, which still yields the single required
// session and respects s*c_max + d2.

#include "mpm/algorithm.hpp"

namespace sesp {

class PeriodicMpmFactory final : public MpmAlgorithmFactory {
 public:
  std::unique_ptr<MpmAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "A(p)-mpm"; }
};

}  // namespace sesp
