#include "algorithms/p2p/knowledge_algs.hpp"

#include <algorithm>

namespace sesp {

namespace {

class P2pSync final : public P2pAlgorithm {
 public:
  explicit P2pSync(std::int64_t s) : s_(std::max<std::int64_t>(s, 1)) {}

  void on_step(const Knowledge& /*view*/) override {
    ++steps_;
    if (steps_ >= s_) idle_ = true;
  }

  PortInfo advertised() const override { return PortInfo{steps_, 0, idle_}; }
  bool is_idle() const override { return idle_; }

 private:
  std::int64_t s_;
  std::int64_t steps_ = 0;
  bool idle_ = false;
};

class P2pPeriodic final : public P2pAlgorithm {
 public:
  P2pPeriodic(ProcessId self, std::int64_t s, std::int32_t n)
      : self_(self), s_(s), n_(n) {}

  void on_step(const Knowledge& view) override {
    ++steps_;
    if (s_ <= 1) {
      idle_ = true;
      return;
    }
    if (steps_ >= s_ - 1) done_ = true;
    if (done_ && steps_ >= s_ && view.all_done(n_, self_)) idle_ = true;
  }

  PortInfo advertised() const override { return PortInfo{steps_, 0, done_}; }
  bool is_idle() const override { return idle_; }

 private:
  ProcessId self_;
  std::int64_t s_;
  std::int32_t n_;
  std::int64_t steps_ = 0;
  bool done_ = false;
  bool idle_ = false;
};

class P2pRounds final : public P2pAlgorithm {
 public:
  P2pRounds(ProcessId self, std::int64_t s, std::int32_t n)
      : self_(self), s_(s), n_(n) {}

  void on_step(const Knowledge& view) override {
    // At most one round advances per step (one step witnesses one session).
    if (completed_ < s_ &&
        (completed_ == 0 || view.all_have_session(n_, completed_, self_))) {
      ++completed_;
      if (completed_ >= s_) idle_ = true;
    }
  }

  PortInfo advertised() const override {
    return PortInfo{completed_, completed_, completed_ >= s_};
  }
  bool is_idle() const override { return idle_; }

 private:
  ProcessId self_;
  std::int64_t s_;
  std::int32_t n_;
  std::int64_t completed_ = 0;
  bool idle_ = false;
};

}  // namespace

std::unique_ptr<P2pAlgorithm> P2pSyncFactory::create(
    ProcessId /*p*/, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return std::make_unique<P2pSync>(spec.s);
}

std::unique_ptr<P2pAlgorithm> P2pPeriodicFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return std::make_unique<P2pPeriodic>(p, spec.s, spec.n);
}

std::unique_ptr<P2pAlgorithm> P2pRoundsFactory::create(
    ProcessId p, const ProblemSpec& spec,
    const TimingConstraints& /*constraints*/) const {
  return std::make_unique<P2pRounds>(p, spec.s, spec.n);
}

}  // namespace sesp
