#pragma once

// Knowledge-gossip algorithms for the point-to-point variant. The abstract
// MPM algorithms carry over with message contents replaced by the monotone
// knowledge view the relay gossip maintains:
//
//  * P2pSyncFactory      — s steps, no dependence on the view (synchronous).
//  * P2pPeriodicFactory  — A(p): s-1 steps, advertise done, idle once the
//                          view shows every other process done and >= s own
//                          steps.
//  * P2pRoundsFactory    — one knowledge round per session (asynchronous /
//                          semi-synchronous communication strategy): advance
//                          to round r+1 once the view shows everyone
//                          completed round r.
//
// End-to-end propagation in this substrate costs diameter hops, so the
// round-based algorithm's per-session time is ~ D*(d_hop + c2) — the
// diameter factor of [4] that the abstract model's d2 absorbs.

#include "p2p/algorithm.hpp"

namespace sesp {

class P2pSyncFactory final : public P2pAlgorithmFactory {
 public:
  std::unique_ptr<P2pAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "sync-p2p"; }
};

class P2pPeriodicFactory final : public P2pAlgorithmFactory {
 public:
  std::unique_ptr<P2pAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "A(p)-p2p"; }
};

class P2pRoundsFactory final : public P2pAlgorithmFactory {
 public:
  std::unique_ptr<P2pAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const override;
  const char* name() const override { return "rounds-p2p"; }
};

}  // namespace sesp
