#include "smm/smm_simulator.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/calendar_queue.hpp"

namespace sesp {

// Only compute events exist in the SMM (relay gossip is itself a compute
// step on a shared variable), so the calendar queue degenerates to one FIFO
// lane per distinct time — which is exactly the old (time, seq) heap order.
// Hot-phase timers are sampled (obs::SampledPhaseTimer) so the profiled run
// no longer pays two clock reads per event.

std::int32_t smm_total_processes(std::int32_t n, std::int32_t b) {
  SharedMemory scratch(std::max(b, 2));
  TreeNetwork tree(n, std::max(b, 2), scratch, n);
  return n + tree.num_relays();
}

SmmSimulator::SmmSimulator(const ProblemSpec& spec,
                           const TimingConstraints& constraints,
                           const SmmAlgorithmFactory& factory,
                           StepScheduler& scheduler, FaultInjector* faults,
                           obs::Observer* observer)
    : spec_(spec),
      constraints_(constraints),
      factory_(factory),
      scheduler_(scheduler),
      faults_(faults),
      observer_(observer) {}

SmmRunResult SmmSimulator::run(const SmmRunLimits& limits) {
  const std::int32_t n = spec_.n;
  obs::Observer* const o = obs::resolve(observer_);
  obs::Profiler* const prof = o ? o->profiler : nullptr;
  obs::Span run_span(o ? o->trace : nullptr, "smm.run", "sim",
                     o && o->trace
                         ? obs::args_object(
                               {obs::arg_int("n", n),
                                obs::arg_int("s", spec_.s),
                                obs::arg_int("b", spec_.b)})
                         : std::string());
  if (o && o->runs) o->runs->inc();
  if (n <= 0 || (n > 1 && spec_.b < 2)) {
    SmmRunResult result{TimedComputation(Substrate::kSharedMemory,
                                         std::max(n, 0), std::max(n, 0)),
                        false, false, 0, 0, 0, 0, std::nullopt, {}};
    SimError err;
    err.code = SimErrorCode::kInvalidSpec;
    err.detail = "SMM needs n >= 1 and b >= 2, got n=" + std::to_string(n) +
                 " b=" + std::to_string(spec_.b);
    result.error = std::move(err);
    obs::observe_error(o, *result.error);
    return result;
  }
  SharedMemory mem(std::max(spec_.b, 1));

  // Port variables: accessed only by their port process, so any b works.
  std::vector<VarId> port_var(static_cast<std::size_t>(n));
  // Scratch variables stand in when an algorithm asks for a tree access but
  // no tree exists (n == 1): the step still accesses exactly one variable
  // without becoming a port step.
  std::vector<VarId> scratch_var(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    port_var[static_cast<std::size_t>(p)] =
        mem.create_var({p}, "port" + std::to_string(p));
    scratch_var[static_cast<std::size_t>(p)] =
        mem.create_var({p}, "scratch" + std::to_string(p));
  }

  TreeNetwork tree(n, std::max(spec_.b, 2), mem, n);
  const std::int32_t total = n + tree.num_relays();

  SmmRunResult result{TimedComputation(Substrate::kSharedMemory, total, n),
                      false,
                      false,
                      0,
                      tree.num_relays(),
                      tree.depth(),
                      tree.latency_steps_bound(),
                      std::nullopt,
                      {}};
  TimedComputation& trace = result.trace;
  // Pre-size the step log to the budget (SMM traces carry no messages), so
  // budget-bounded runs never pay the log's geometric reallocations; capped
  // so unbounded budgets stay lazy (docs/performance.md "Data layout").
  if (limits.max_steps > 0)
    trace.reserve(static_cast<std::size_t>(std::min<std::int64_t>(
                      limits.max_steps + total, std::int64_t{1} << 18)),
                  0);

  std::vector<std::unique_ptr<SmmPortAlgorithm>> algs;
  algs.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p)
    algs.push_back(factory_.create(p, spec_, constraints_));

  // Relay gossip state: accumulated knowledge and rotation position.
  std::vector<Knowledge> relay_knowledge(
      static_cast<std::size_t>(tree.num_relays()));
  std::vector<std::size_t> relay_pos(
      static_cast<std::size_t>(tree.num_relays()), 0);
  // Per (relay, rotation slot): the (variable, relay) content stamps after
  // the last gossip exchange there. Matching stamps prove the exchange
  // would join two unchanged values again — a no-op — and skip it; once a
  // livelocked run saturates its subtree's knowledge, every relay visit
  // takes this skip (Knowledge::stamp()). 0 is a real stamp (the empty
  // value), so the sentinel is max.
  constexpr std::uint64_t kNoStamp = ~std::uint64_t{0};
  std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      relay_memo(static_cast<std::size_t>(tree.num_relays()));
  for (std::size_t r = 0; r < relay_memo.size(); ++r)
    relay_memo[r].assign(tree.relays()[r].rotation.size(),
                         {kNoStamp, kNoStamp});

  CalendarQueue queue;
  obs::SampledPhaseTimer pop_timer(prof, obs::ProfilePhase::kEventQueuePop);
  obs::SampledPhaseTimer step_timer(prof, obs::ProfilePhase::kProcessStep);
  obs::SampledPhaseTimer sched_timer(prof, obs::ProfilePhase::kSchedule);

  std::vector<std::int64_t> step_count(static_cast<std::size_t>(total), 0);
  std::int32_t ports_non_idle = n;
  // Hot-loop observer instruments, resolved once (the compiler cannot hoist
  // the loads past the loop's stores itself).
  obs::Gauge* const g_queue_depth = o ? o->event_queue_depth : nullptr;
  obs::Counter* const c_shared_reads = o ? o->shared_reads : nullptr;
  obs::Counter* const c_steps = o ? o->steps : nullptr;

  auto schedule_step = [&](ProcessId p, std::optional<Time> prev,
                           std::int64_t index) -> bool {
    sched_timer.begin();
    Time t = scheduler_.next_step_time(p, prev, index);
    const Time floor = prev.value_or(Time(0));
    if (faults_) {
      const Time scheduled = t;
      t = faults_->perturb_step_time(p, index, floor, t);
      if (t != scheduled) obs::observe_fault(o, "timing", p, t);
    }
    if (t < floor) {
      SimError err;
      err.code = SimErrorCode::kNonMonotonicSchedule;
      err.detail = "scheduled t=" + t.to_string() + " before t=" +
                   floor.to_string();
      err.process = p;
      err.step_index = static_cast<std::int64_t>(trace.steps().size());
      err.time = floor;
      result.error = std::move(err);
      sched_timer.end();
      return false;
    }
    queue.push_compute(t, p);
    sched_timer.end();
    return true;
  };

  for (ProcessId p = 0; p < total; ++p)
    if (!schedule_step(p, std::nullopt, 0)) {
      obs::observe_error(o, *result.error);
      return result;
    }

  Time last_event_time(0);
  std::int64_t stagnant_events = 0;
  CalendarQueue::Popped ev;

  while (!queue.empty() && ports_non_idle > 0) {
    pop_timer.begin();
    const std::size_t depth = queue.size();
    queue.pop(ev);
    pop_timer.end();
    if (g_queue_depth)
      g_queue_depth->set(static_cast<std::int64_t>(depth));
    if (result.compute_steps >= limits.max_steps ||
        limits.max_time < ev.time) {
      result.hit_limit = true;
      SimError err;
      const bool steps = result.compute_steps >= limits.max_steps;
      err.code = steps ? SimErrorCode::kStepLimitExceeded
                       : SimErrorCode::kTimeLimitExceeded;
      err.detail = steps ? "compute-step budget " +
                               std::to_string(limits.max_steps) + " exhausted"
                         : "model-time budget " + limits.max_time.to_string() +
                               " exhausted";
      err.step_index = static_cast<std::int64_t>(trace.steps().size());
      err.time = ev.time;
      result.error = std::move(err);
      break;
    }
    if (ev.time == last_event_time) {
      if (++stagnant_events > limits.max_stagnant_events) {
        result.hit_limit = true;
        SimError err;
        err.code = SimErrorCode::kNoProgress;
        err.detail = "time pinned at t=" + ev.time.to_string() + " for " +
                     std::to_string(stagnant_events) + " events";
        err.step_index = static_cast<std::int64_t>(trace.steps().size());
        err.time = ev.time;
        result.error = std::move(err);
        break;
      }
    } else {
      last_event_time = ev.time;
      stagnant_events = 0;
    }

    const ProcessId p = ev.process;
    const auto pi = static_cast<std::size_t>(p);

    // Crash-stop: ports never idle afterwards; relays stop gossiping, which
    // starves the subtree (the watchdog then ends livelocked runs).
    if (faults_ && faults_->crash_now(p, step_count[pi], ev.time)) {
      obs::observe_fault(o, "crash", p, ev.time);
      result.crashed.push_back(p);
      if (p < n) --ports_non_idle;
      continue;
    }

    step_timer.begin();
    StepRecord& st = trace.append_slot();
    st.kind = StepKind::kCompute;
    st.process = p;
    st.time = ev.time;

    bool idle = false;
    if (p < n) {
      SmmPortAlgorithm& alg = *algs[pi];
      const SmmChoice choice = alg.choose();
      if (choice == SmmChoice::kPort) {
        const VarId v = port_var[pi];
        Knowledge& value = mem.access(v, p);
        st.var = v;
        st.port = p;
        st.value_before_digest = value.digest();
        alg.on_port_access();
        // The port variable's content is immaterial to the algorithms, but
        // a write is recorded so reorderings see a real mutation point.
        value.record(p, alg.advertised());
        st.value_after_digest = value.digest();
      } else {
        VarId v = tree.uplink(p);
        if (v == kNoVar) v = scratch_var[pi];
        Knowledge& value = mem.access(v, p);
        st.var = v;
        st.value_before_digest = value.digest();
        // Write corruption: the read-modify-write loses the variable's
        // previous contents (lost update) before this process's write.
        if (faults_ && faults_->corrupt_write(v, p, ev.time)) {
          obs::observe_fault(o, "corrupt", p, ev.time);
          value = Knowledge{};
        }
        value.record(p, alg.advertised());
        alg.on_tree_snapshot(value);
        st.value_after_digest = value.digest();
      }
      if (c_shared_reads) {
        c_shared_reads->inc();
        o->shared_writes->inc();
      }
      idle = alg.is_idle();
      st.idle_after = idle;
    } else {
      // Relay gossip step.
      const auto r = static_cast<std::size_t>(p - n);
      const RelaySpec& spec = tree.relays()[r];
      const std::size_t slot = relay_pos[r] % spec.rotation.size();
      const VarId v = spec.rotation[slot];
      ++relay_pos[r];
      Knowledge& value = mem.access(v, p);
      st.var = v;
      st.value_before_digest = value.digest();
      if (faults_ && faults_->corrupt_write(v, p, ev.time)) {
        obs::observe_fault(o, "corrupt", p, ev.time);
        value = Knowledge{};
      }
      auto& memo = relay_memo[r][slot];
      if (memo.first != value.stamp() ||
          memo.second != relay_knowledge[r].stamp()) {
        value.merge(relay_knowledge[r]);
        relay_knowledge[r].merge(value);
        memo = {value.stamp(), relay_knowledge[r].stamp()};
      }
      st.value_after_digest = value.digest();
      if (c_shared_reads) {
        c_shared_reads->inc();
        o->shared_writes->inc();
      }
    }

    ++result.compute_steps;
    if (c_steps) c_steps->inc();
    ++step_count[pi];
    step_timer.end();

    if (idle) {
      --ports_non_idle;
    } else if (!schedule_step(p, ev.time, step_count[pi])) {
      break;
    }
  }

  result.completed = ports_non_idle == 0 && !result.error;
  if (result.error) obs::observe_error(o, *result.error);
  obs::observe_watchdog_margins(o, result.compute_steps, limits.max_steps,
                                last_event_time, limits.max_time);
  if (o && o->trace)
    run_span.set_args(obs::args_object(
        {obs::arg_int("n", n), obs::arg_int("s", spec_.s),
         obs::arg_int("b", spec_.b),
         obs::arg_int("steps", result.compute_steps),
         obs::arg_int("relays", result.num_relays),
         obs::arg_int("completed", result.completed ? 1 : 0)}));
  return result;
}

}  // namespace sesp
