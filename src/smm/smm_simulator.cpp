#include "smm/smm_simulator.hpp"

#include <cstdio>
#include <cstdlib>
#include <queue>
#include <vector>

namespace sesp {

namespace {

struct Event {
  Time time;
  std::uint64_t seq;
  ProcessId process;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return b.time < a.time;
    return a.seq > b.seq;
  }
};

}  // namespace

std::int32_t smm_total_processes(std::int32_t n, std::int32_t b) {
  SharedMemory scratch(std::max(b, 2));
  TreeNetwork tree(n, std::max(b, 2), scratch, n);
  return n + tree.num_relays();
}

SmmSimulator::SmmSimulator(const ProblemSpec& spec,
                           const TimingConstraints& constraints,
                           const SmmAlgorithmFactory& factory,
                           StepScheduler& scheduler)
    : spec_(spec),
      constraints_(constraints),
      factory_(factory),
      scheduler_(scheduler) {
  if (spec_.n <= 0 || (spec_.n > 1 && spec_.b < 2)) {
    std::fprintf(stderr, "SmmSimulator fatal: need n >= 1 and b >= 2\n");
    std::abort();
  }
}

SmmRunResult SmmSimulator::run(const SmmRunLimits& limits) {
  const std::int32_t n = spec_.n;
  SharedMemory mem(std::max(spec_.b, 1));

  // Port variables: accessed only by their port process, so any b works.
  std::vector<VarId> port_var(static_cast<std::size_t>(n));
  // Scratch variables stand in when an algorithm asks for a tree access but
  // no tree exists (n == 1): the step still accesses exactly one variable
  // without becoming a port step.
  std::vector<VarId> scratch_var(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    port_var[static_cast<std::size_t>(p)] =
        mem.create_var({p}, "port" + std::to_string(p));
    scratch_var[static_cast<std::size_t>(p)] =
        mem.create_var({p}, "scratch" + std::to_string(p));
  }

  TreeNetwork tree(n, std::max(spec_.b, 2), mem, n);
  const std::int32_t total = n + tree.num_relays();

  SmmRunResult result{TimedComputation(Substrate::kSharedMemory, total, n),
                      false,
                      false,
                      0,
                      tree.num_relays(),
                      tree.depth(),
                      tree.latency_steps_bound()};
  TimedComputation& trace = result.trace;

  std::vector<std::unique_ptr<SmmPortAlgorithm>> algs;
  algs.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p)
    algs.push_back(factory_.create(p, spec_, constraints_));

  // Relay gossip state: accumulated knowledge and rotation position.
  std::vector<Knowledge> relay_knowledge(
      static_cast<std::size_t>(tree.num_relays()));
  std::vector<std::size_t> relay_pos(
      static_cast<std::size_t>(tree.num_relays()), 0);

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
  std::uint64_t seq = 0;
  std::vector<std::int64_t> step_count(static_cast<std::size_t>(total), 0);
  std::int32_t ports_non_idle = n;

  for (ProcessId p = 0; p < total; ++p)
    queue.push(Event{scheduler_.next_step_time(p, std::nullopt, 0), seq++, p});

  while (!queue.empty() && ports_non_idle > 0) {
    const Event ev = queue.top();
    queue.pop();
    if (result.compute_steps >= limits.max_steps ||
        limits.max_time < ev.time) {
      result.hit_limit = true;
      break;
    }

    const ProcessId p = ev.process;
    StepRecord st;
    st.kind = StepKind::kCompute;
    st.process = p;
    st.time = ev.time;

    bool idle = false;
    if (p < n) {
      SmmPortAlgorithm& alg = *algs[static_cast<std::size_t>(p)];
      const SmmChoice choice = alg.choose();
      if (choice == SmmChoice::kPort) {
        const VarId v = port_var[static_cast<std::size_t>(p)];
        Knowledge& value = mem.access(v, p);
        st.var = v;
        st.port = p;
        st.value_before_digest = value.digest();
        alg.on_port_access();
        // The port variable's content is immaterial to the algorithms, but
        // a write is recorded so reorderings see a real mutation point.
        value.record(p, alg.advertised());
        st.value_after_digest = value.digest();
      } else {
        VarId v = tree.uplink(p);
        if (v == kNoVar) v = scratch_var[static_cast<std::size_t>(p)];
        Knowledge& value = mem.access(v, p);
        st.var = v;
        st.value_before_digest = value.digest();
        value.record(p, alg.advertised());
        alg.on_tree_snapshot(value);
        st.value_after_digest = value.digest();
      }
      idle = alg.is_idle();
      st.idle_after = idle;
    } else {
      // Relay gossip step.
      const auto r = static_cast<std::size_t>(p - n);
      const RelaySpec& spec = tree.relays()[r];
      const VarId v = spec.rotation[relay_pos[r] % spec.rotation.size()];
      ++relay_pos[r];
      Knowledge& value = mem.access(v, p);
      st.var = v;
      st.value_before_digest = value.digest();
      value.merge(relay_knowledge[r]);
      relay_knowledge[r].merge(value);
      st.value_after_digest = value.digest();
    }

    trace.append(st);
    ++result.compute_steps;
    ++step_count[static_cast<std::size_t>(p)];

    if (idle) {
      --ports_non_idle;
    } else {
      queue.push(Event{scheduler_.next_step_time(
                           p, ev.time, step_count[static_cast<std::size_t>(p)]),
                       seq++, p});
    }
  }

  result.completed = ports_non_idle == 0;
  return result;
}

}  // namespace sesp
