#include "smm/smm_simulator.hpp"

#include <queue>
#include <vector>

namespace sesp {

namespace {

struct Event {
  Time time;
  std::uint64_t seq;
  ProcessId process;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return b.time < a.time;
    return a.seq > b.seq;
  }
};

}  // namespace

std::int32_t smm_total_processes(std::int32_t n, std::int32_t b) {
  SharedMemory scratch(std::max(b, 2));
  TreeNetwork tree(n, std::max(b, 2), scratch, n);
  return n + tree.num_relays();
}

SmmSimulator::SmmSimulator(const ProblemSpec& spec,
                           const TimingConstraints& constraints,
                           const SmmAlgorithmFactory& factory,
                           StepScheduler& scheduler, FaultInjector* faults,
                           obs::Observer* observer)
    : spec_(spec),
      constraints_(constraints),
      factory_(factory),
      scheduler_(scheduler),
      faults_(faults),
      observer_(observer) {}

SmmRunResult SmmSimulator::run(const SmmRunLimits& limits) {
  const std::int32_t n = spec_.n;
  obs::Observer* const o = obs::resolve(observer_);
  obs::Profiler* const prof = o ? o->profiler : nullptr;
  obs::Span run_span(o ? o->trace : nullptr, "smm.run", "sim",
                     o && o->trace
                         ? obs::args_object(
                               {obs::arg_int("n", n),
                                obs::arg_int("s", spec_.s),
                                obs::arg_int("b", spec_.b)})
                         : std::string());
  if (o && o->runs) o->runs->inc();
  if (n <= 0 || (n > 1 && spec_.b < 2)) {
    SmmRunResult result{TimedComputation(Substrate::kSharedMemory,
                                         std::max(n, 0), std::max(n, 0)),
                        false, false, 0, 0, 0, 0, std::nullopt, {}};
    SimError err;
    err.code = SimErrorCode::kInvalidSpec;
    err.detail = "SMM needs n >= 1 and b >= 2, got n=" + std::to_string(n) +
                 " b=" + std::to_string(spec_.b);
    result.error = std::move(err);
    obs::observe_error(o, *result.error);
    return result;
  }
  SharedMemory mem(std::max(spec_.b, 1));

  // Port variables: accessed only by their port process, so any b works.
  std::vector<VarId> port_var(static_cast<std::size_t>(n));
  // Scratch variables stand in when an algorithm asks for a tree access but
  // no tree exists (n == 1): the step still accesses exactly one variable
  // without becoming a port step.
  std::vector<VarId> scratch_var(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) {
    port_var[static_cast<std::size_t>(p)] =
        mem.create_var({p}, "port" + std::to_string(p));
    scratch_var[static_cast<std::size_t>(p)] =
        mem.create_var({p}, "scratch" + std::to_string(p));
  }

  TreeNetwork tree(n, std::max(spec_.b, 2), mem, n);
  const std::int32_t total = n + tree.num_relays();

  SmmRunResult result{TimedComputation(Substrate::kSharedMemory, total, n),
                      false,
                      false,
                      0,
                      tree.num_relays(),
                      tree.depth(),
                      tree.latency_steps_bound(),
                      std::nullopt,
                      {}};
  TimedComputation& trace = result.trace;

  std::vector<std::unique_ptr<SmmPortAlgorithm>> algs;
  algs.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p)
    algs.push_back(factory_.create(p, spec_, constraints_));

  // Relay gossip state: accumulated knowledge and rotation position.
  std::vector<Knowledge> relay_knowledge(
      static_cast<std::size_t>(tree.num_relays()));
  std::vector<std::size_t> relay_pos(
      static_cast<std::size_t>(tree.num_relays()), 0);

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
  std::uint64_t seq = 0;
  std::vector<std::int64_t> step_count(static_cast<std::size_t>(total), 0);
  std::int32_t ports_non_idle = n;

  auto schedule_step = [&](ProcessId p, std::optional<Time> prev,
                           std::int64_t index) -> bool {
    obs::ProfileScope ps(prof, obs::ProfilePhase::kSchedule);
    Time t = scheduler_.next_step_time(p, prev, index);
    const Time floor = prev.value_or(Time(0));
    if (faults_) {
      const Time scheduled = t;
      t = faults_->perturb_step_time(p, index, floor, t);
      if (t != scheduled) obs::observe_fault(o, "timing", p, t);
    }
    if (t < floor) {
      SimError err;
      err.code = SimErrorCode::kNonMonotonicSchedule;
      err.detail = "scheduled t=" + t.to_string() + " before t=" +
                   floor.to_string();
      err.process = p;
      err.step_index = static_cast<std::int64_t>(trace.steps().size());
      err.time = floor;
      result.error = std::move(err);
      return false;
    }
    queue.push(Event{t, seq++, p});
    return true;
  };

  for (ProcessId p = 0; p < total; ++p)
    if (!schedule_step(p, std::nullopt, 0)) {
      obs::observe_error(o, *result.error);
      return result;
    }

  Time last_event_time(0);
  std::int64_t stagnant_events = 0;

  while (!queue.empty() && ports_non_idle > 0) {
    const Event ev = [&] {
      obs::ProfileScope pop_scope(prof, obs::ProfilePhase::kEventQueuePop);
      const Event top = queue.top();
      queue.pop();
      return top;
    }();
    if (o && o->event_queue_depth)
      o->event_queue_depth->set(static_cast<std::int64_t>(queue.size()) + 1);
    if (result.compute_steps >= limits.max_steps ||
        limits.max_time < ev.time) {
      result.hit_limit = true;
      SimError err;
      const bool steps = result.compute_steps >= limits.max_steps;
      err.code = steps ? SimErrorCode::kStepLimitExceeded
                       : SimErrorCode::kTimeLimitExceeded;
      err.detail = steps ? "compute-step budget " +
                               std::to_string(limits.max_steps) + " exhausted"
                         : "model-time budget " + limits.max_time.to_string() +
                               " exhausted";
      err.step_index = static_cast<std::int64_t>(trace.steps().size());
      err.time = ev.time;
      result.error = std::move(err);
      break;
    }
    if (ev.time == last_event_time) {
      if (++stagnant_events > limits.max_stagnant_events) {
        result.hit_limit = true;
        SimError err;
        err.code = SimErrorCode::kNoProgress;
        err.detail = "time pinned at t=" + ev.time.to_string() + " for " +
                     std::to_string(stagnant_events) + " events";
        err.step_index = static_cast<std::int64_t>(trace.steps().size());
        err.time = ev.time;
        result.error = std::move(err);
        break;
      }
    } else {
      last_event_time = ev.time;
      stagnant_events = 0;
    }

    const ProcessId p = ev.process;
    const auto pi = static_cast<std::size_t>(p);

    // Crash-stop: ports never idle afterwards; relays stop gossiping, which
    // starves the subtree (the watchdog then ends livelocked runs).
    if (faults_ && faults_->crash_now(p, step_count[pi], ev.time)) {
      obs::observe_fault(o, "crash", p, ev.time);
      result.crashed.push_back(p);
      if (p < n) --ports_non_idle;
      continue;
    }

    obs::ProfileScope step_scope(prof, obs::ProfilePhase::kProcessStep);
    StepRecord st;
    st.kind = StepKind::kCompute;
    st.process = p;
    st.time = ev.time;

    bool idle = false;
    if (p < n) {
      SmmPortAlgorithm& alg = *algs[pi];
      const SmmChoice choice = alg.choose();
      if (choice == SmmChoice::kPort) {
        const VarId v = port_var[pi];
        Knowledge& value = mem.access(v, p);
        st.var = v;
        st.port = p;
        st.value_before_digest = value.digest();
        alg.on_port_access();
        // The port variable's content is immaterial to the algorithms, but
        // a write is recorded so reorderings see a real mutation point.
        value.record(p, alg.advertised());
        st.value_after_digest = value.digest();
      } else {
        VarId v = tree.uplink(p);
        if (v == kNoVar) v = scratch_var[pi];
        Knowledge& value = mem.access(v, p);
        st.var = v;
        st.value_before_digest = value.digest();
        // Write corruption: the read-modify-write loses the variable's
        // previous contents (lost update) before this process's write.
        if (faults_ && faults_->corrupt_write(v, p, ev.time)) {
          obs::observe_fault(o, "corrupt", p, ev.time);
          value = Knowledge{};
        }
        value.record(p, alg.advertised());
        alg.on_tree_snapshot(value);
        st.value_after_digest = value.digest();
      }
      if (o && o->shared_reads) {
        o->shared_reads->inc();
        o->shared_writes->inc();
      }
      idle = alg.is_idle();
      st.idle_after = idle;
    } else {
      // Relay gossip step.
      const auto r = static_cast<std::size_t>(p - n);
      const RelaySpec& spec = tree.relays()[r];
      const VarId v = spec.rotation[relay_pos[r] % spec.rotation.size()];
      ++relay_pos[r];
      Knowledge& value = mem.access(v, p);
      st.var = v;
      st.value_before_digest = value.digest();
      if (faults_ && faults_->corrupt_write(v, p, ev.time)) {
        obs::observe_fault(o, "corrupt", p, ev.time);
        value = Knowledge{};
      }
      value.merge(relay_knowledge[r]);
      relay_knowledge[r].merge(value);
      st.value_after_digest = value.digest();
      if (o && o->shared_reads) {
        o->shared_reads->inc();
        o->shared_writes->inc();
      }
    }

    trace.append(st);
    ++result.compute_steps;
    if (o && o->steps) o->steps->inc();
    ++step_count[pi];

    if (idle) {
      --ports_non_idle;
    } else if (!schedule_step(p, ev.time, step_count[pi])) {
      break;
    }
  }

  result.completed = ports_non_idle == 0 && !result.error;
  if (result.error) obs::observe_error(o, *result.error);
  obs::observe_watchdog_margins(o, result.compute_steps, limits.max_steps,
                                last_event_time, limits.max_time);
  if (o && o->trace)
    run_span.set_args(obs::args_object(
        {obs::arg_int("n", n), obs::arg_int("s", spec_.s),
         obs::arg_int("b", spec_.b),
         obs::arg_int("steps", result.compute_steps),
         obs::arg_int("relays", result.num_relays),
         obs::arg_int("completed", result.completed ? 1 : 0)}));
  return result;
}

}  // namespace sesp
