#include "smm/knowledge.hpp"

#include <algorithm>
#include <sstream>

namespace sesp {

PortInfo join(const PortInfo& a, const PortInfo& b) {
  return PortInfo{std::max(a.steps, b.steps), std::max(a.session, b.session),
                  a.done || b.done};
}

PortInfo Knowledge::about(ProcessId p) const {
  const auto it = facts_.find(p);
  return it == facts_.end() ? PortInfo{} : it->second;
}

void Knowledge::record(ProcessId p, const PortInfo& info) {
  auto [it, inserted] = facts_.try_emplace(p, info);
  if (!inserted) it->second = join(it->second, info);
}

void Knowledge::merge(const Knowledge& other) {
  for (const auto& [p, info] : other.facts_) record(p, info);
}

bool Knowledge::all_have_steps(std::int32_t n, std::int64_t threshold,
                               ProcessId except) const {
  for (ProcessId p = 0; p < n; ++p) {
    if (p == except) continue;
    if (about(p).steps < threshold) return false;
  }
  return true;
}

bool Knowledge::all_have_session(std::int32_t n, std::int64_t threshold,
                                 ProcessId except) const {
  for (ProcessId p = 0; p < n; ++p) {
    if (p == except) continue;
    if (about(p).session < threshold) return false;
  }
  return true;
}

bool Knowledge::all_done(std::int32_t n, ProcessId except) const {
  for (ProcessId p = 0; p < n; ++p) {
    if (p == except) continue;
    if (!about(p).done) return false;
  }
  return true;
}

std::uint64_t Knowledge::digest() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  for (const auto& [p, info] : facts_) {
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(p)));
    mix(static_cast<std::uint64_t>(info.steps));
    mix(static_cast<std::uint64_t>(info.session));
    mix(info.done ? 1 : 0);
  }
  return h;
}

std::string Knowledge::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [p, info] : facts_) {
    if (!first) os << ", ";
    first = false;
    os << "p" << p << ":(steps=" << info.steps << ",sess=" << info.session
       << (info.done ? ",done)" : ")");
  }
  os << "}";
  return os.str();
}

}  // namespace sesp
