#include "smm/knowledge.hpp"

#include <algorithm>
#include <sstream>

namespace sesp {

PortInfo join(const PortInfo& a, const PortInfo& b) {
  return PortInfo{std::max(a.steps, b.steps), std::max(a.session, b.session),
                  a.done || b.done};
}

const Knowledge::Entry* Knowledge::find(ProcessId p) const noexcept {
  // Entries are few (ports + relays); a contiguous scan beats binary search
  // at these sizes and the sorted order lets it stop early.
  for (const Entry& e : facts_) {
    if (e.process == p) return &e;
    if (e.process > p) break;
  }
  return nullptr;
}

PortInfo Knowledge::about(ProcessId p) const {
  const Entry* e = find(p);
  return e == nullptr ? PortInfo{} : e->info;
}

void Knowledge::record(ProcessId p, const PortInfo& info) {
  std::size_t i = 0;
  while (i < facts_.size() && facts_[i].process < p) ++i;
  if (i < facts_.size() && facts_[i].process == p) {
    const PortInfo joined = join(facts_[i].info, info);
    if (joined == facts_[i].info) return;  // fact unchanged; cache holds
    facts_[i].info = joined;
    touch();
    return;
  }
  facts_.insert(facts_.begin() + static_cast<std::ptrdiff_t>(i),
                Entry{p, info});
  touch();
}

void Knowledge::merge(const Knowledge& other) {
  if (other.facts_.empty()) return;
  if (facts_.empty()) {
    facts_ = other.facts_;
    stamp_ = other.stamp_;  // content adopted wholesale: share the stamp
    cached_digest_ = other.cached_digest_;
    digest_valid_ = other.digest_valid_;
    return;
  }
  // Two-pointer join of sorted runs, in place: common ids are joined
  // pointwise; ids only in `other` are batched into one tail merge. Once
  // the join saturates (livelocked gossip replays the same facts), no
  // entry changes and the digest cache survives the merge.
  std::size_t i = 0;
  bool changed = false;
  std::vector<Entry> missing;
  for (const Entry& e : other.facts_) {
    while (i < facts_.size() && facts_[i].process < e.process) ++i;
    if (i < facts_.size() && facts_[i].process == e.process) {
      const PortInfo joined = join(facts_[i].info, e.info);
      if (joined != facts_[i].info) {
        facts_[i].info = joined;
        changed = true;
      }
    } else {
      missing.push_back(e);
    }
  }
  if (changed) touch();
  if (missing.empty()) return;
  touch();
  facts_.insert(facts_.end(), missing.begin(), missing.end());
  std::inplace_merge(facts_.begin(),
                     facts_.end() - static_cast<std::ptrdiff_t>(missing.size()),
                     facts_.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.process < b.process;
                     });
}

bool Knowledge::all_have_steps(std::int32_t n, std::int64_t threshold,
                               ProcessId except) const {
  std::size_t i = 0;
  for (ProcessId p = 0; p < n; ++p) {
    if (p == except) continue;
    while (i < facts_.size() && facts_[i].process < p) ++i;
    if (i >= facts_.size() || facts_[i].process != p ||
        facts_[i].info.steps < threshold)
      return false;
  }
  return true;
}

bool Knowledge::all_have_session(std::int32_t n, std::int64_t threshold,
                                 ProcessId except) const {
  std::size_t i = 0;
  for (ProcessId p = 0; p < n; ++p) {
    if (p == except) continue;
    while (i < facts_.size() && facts_[i].process < p) ++i;
    if (i >= facts_.size() || facts_[i].process != p ||
        facts_[i].info.session < threshold)
      return false;
  }
  return true;
}

bool Knowledge::all_done(std::int32_t n, ProcessId except) const {
  std::size_t i = 0;
  for (ProcessId p = 0; p < n; ++p) {
    if (p == except) continue;
    while (i < facts_.size() && facts_[i].process < p) ++i;
    if (i >= facts_.size() || facts_[i].process != p || !facts_[i].info.done)
      return false;
  }
  return true;
}

std::uint64_t Knowledge::digest() const {
  if (digest_valid_) return cached_digest_;
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  for (const Entry& e : facts_) {
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.process)));
    mix(static_cast<std::uint64_t>(e.info.steps));
    mix(static_cast<std::uint64_t>(e.info.session));
    mix(e.info.done ? 1 : 0);
  }
  cached_digest_ = h;
  digest_valid_ = true;
  return h;
}

std::string Knowledge::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Entry& e : facts_) {
    if (!first) os << ", ";
    first = false;
    os << "p" << e.process << ":(steps=" << e.info.steps
       << ",sess=" << e.info.session << (e.info.done ? ",done)" : ")");
  }
  os << "}";
  return os.str();
}

}  // namespace sesp
