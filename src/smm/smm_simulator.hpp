#pragma once

// Event-driven executor of the shared-memory model. Builds the variable
// layout (one port variable and one scratch variable per port process, plus
// the Section-3 broadcast tree), runs port algorithms and fixed-gossip
// relays under the adversary's step schedule, and records the full timed
// computation with per-step variable digests (for the reordering machinery
// of Theorem 5.1).
//
// An optional FaultInjector adds crash-stops, timing violations and shared
// variable write corruption (lost updates) at the corresponding hook points;
// watchdogs (step/time budget, no-progress) bound every run, and ill-formed
// situations surface as a structured SimError, never an abort.
//
// An optional obs::Observer (same nullable pattern) instruments the run:
// step and shared-variable read/write counters, queue-depth gauges,
// watchdog-margin histograms, a run span, and a trace event per injected
// fault and per SimError.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/schedulers.hpp"
#include "faults/fault_injector.hpp"
#include "faults/sim_error.hpp"
#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "obs/observer.hpp"
#include "smm/algorithm.hpp"
#include "smm/shared_memory.hpp"
#include "smm/tree_network.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct SmmRunLimits {
  std::int64_t max_steps = 2'000'000;
  Time max_time = Time(1'000'000'000);
  // No-progress watchdog: maximum consecutive events at one model time.
  std::int64_t max_stagnant_events = 100'000;
};

struct SmmRunResult {
  TimedComputation trace;
  bool completed = false;  // every port process idled or crash-stopped
  bool hit_limit = false;
  std::int64_t compute_steps = 0;
  // Layout facts, so callers can relate measurements to the tree constants.
  std::int32_t num_relays = 0;
  std::int32_t tree_depth = 0;
  std::int64_t tree_latency_steps = 0;
  // Structured diagnostics (see MpmRunResult::error).
  std::optional<SimError> error;
  // Processes (ports or relays) crash-stopped by fault injection.
  std::vector<ProcessId> crashed;
};

// Number of processes (ports + relays) the layout for (n, b) uses; step
// schedulers and periodic period vectors must cover all of them.
std::int32_t smm_total_processes(std::int32_t n, std::int32_t b);

class SmmSimulator {
 public:
  SmmSimulator(const ProblemSpec& spec, const TimingConstraints& constraints,
               const SmmAlgorithmFactory& factory, StepScheduler& scheduler,
               FaultInjector* faults = nullptr,
               obs::Observer* observer = nullptr);

  SmmRunResult run(const SmmRunLimits& limits = SmmRunLimits{});

 private:
  ProblemSpec spec_;
  TimingConstraints constraints_;
  const SmmAlgorithmFactory& factory_;
  StepScheduler& scheduler_;
  FaultInjector* faults_;
  obs::Observer* observer_;
};

}  // namespace sesp
