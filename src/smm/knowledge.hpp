#pragma once

// Shared-variable values for the SMM. The paper puts no bound on variable
// size (Section 2.1.1), and every algorithm here only ever communicates
// monotone per-process facts ("p has taken k port steps / reached session v
// / is done"). A Knowledge value is therefore a map from process id to the
// pointwise maximum of those facts; merging is a commutative, idempotent
// join, which is what makes the tree-relay gossip of Section 3 correct
// regardless of interleaving.

#include <cstdint>
#include <map>
#include <string>

#include "model/ids.hpp"

namespace sesp {

struct PortInfo {
  std::int64_t steps = 0;    // port steps taken
  std::int64_t session = 0;  // session counter value reached
  bool done = false;         // algorithm-specific completion flag

  friend bool operator==(const PortInfo&, const PortInfo&) = default;
};

// Pointwise maximum of two facts about the same process.
PortInfo join(const PortInfo& a, const PortInfo& b);

class Knowledge {
 public:
  Knowledge() = default;

  bool empty() const noexcept { return facts_.empty(); }
  std::size_t size() const noexcept { return facts_.size(); }

  // The recorded fact about p, or a default PortInfo if none.
  PortInfo about(ProcessId p) const;
  bool has(ProcessId p) const { return facts_.count(p) != 0; }

  // Joins `info` into the fact recorded about p.
  void record(ProcessId p, const PortInfo& info);

  // Joins every fact of `other` into this value.
  void merge(const Knowledge& other);

  // True iff a fact with steps >= threshold is recorded for every process in
  // [0, n) except `except` (pass kNetworkProcess for "no exception").
  bool all_have_steps(std::int32_t n, std::int64_t threshold,
                      ProcessId except = kNetworkProcess) const;
  bool all_have_session(std::int32_t n, std::int64_t threshold,
                        ProcessId except = kNetworkProcess) const;
  bool all_done(std::int32_t n, ProcessId except = kNetworkProcess) const;

  // Deterministic digest (FNV-1a over the sorted entries); used to compare
  // variable values across reordered computations in the lower-bound
  // machinery.
  std::uint64_t digest() const;

  std::string to_string() const;

  friend bool operator==(const Knowledge&, const Knowledge&) = default;

 private:
  std::map<ProcessId, PortInfo> facts_;
};

}  // namespace sesp
