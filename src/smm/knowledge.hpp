#pragma once

// Shared-variable values for the SMM. The paper puts no bound on variable
// size (Section 2.1.1), and every algorithm here only ever communicates
// monotone per-process facts ("p has taken k port steps / reached session v
// / is done"). A Knowledge value is therefore a map from process id to the
// pointwise maximum of those facts; merging is a commutative, idempotent
// join, which is what makes the tree-relay gossip of Section 3 correct
// regardless of interleaving.
//
// Representation (docs/performance.md "Data layout"): a flat vector of
// (process, fact) entries kept sorted by process id — no per-node heap
// allocation. Process counts are tiny (ports + relays), so lookups are a
// short contiguous scan, merging is a linear two-pointer join, and copying
// a value (the P2P simulator copies one per in-flight message) is a single
// buffer copy. Iteration order is ascending process id — exactly the order
// the previous std::map representation produced — so digest() and
// to_string() are byte-stable across the layout change; the golden corpus
// pins this.

#include <cstdint>
#include <string>
#include <vector>

#include "model/ids.hpp"

namespace sesp {

struct PortInfo {
  std::int64_t steps = 0;    // port steps taken
  std::int64_t session = 0;  // session counter value reached
  bool done = false;         // algorithm-specific completion flag

  friend bool operator==(const PortInfo&, const PortInfo&) = default;
};

// Pointwise maximum of two facts about the same process.
PortInfo join(const PortInfo& a, const PortInfo& b);

class Knowledge {
 public:
  Knowledge() = default;

  bool empty() const noexcept { return facts_.empty(); }
  std::size_t size() const noexcept { return facts_.size(); }

  // The recorded fact about p, or a default PortInfo if none.
  PortInfo about(ProcessId p) const;
  bool has(ProcessId p) const { return find(p) != nullptr; }

  // Joins `info` into the fact recorded about p.
  void record(ProcessId p, const PortInfo& info);

  // Joins every fact of `other` into this value.
  void merge(const Knowledge& other);

  // True iff a fact with steps >= threshold is recorded for every process in
  // [0, n) except `except` (pass kNetworkProcess for "no exception").
  bool all_have_steps(std::int32_t n, std::int64_t threshold,
                      ProcessId except = kNetworkProcess) const;
  bool all_have_session(std::int32_t n, std::int64_t threshold,
                        ProcessId except = kNetworkProcess) const;
  bool all_done(std::int32_t n, ProcessId except = kNetworkProcess) const;

  // Deterministic digest (FNV-1a over the sorted entries); used to compare
  // variable values across reordered computations in the lower-bound
  // machinery. Memoized: record() and merge() only invalidate the cache
  // when they actually change a fact, so the simulators' before/after
  // digests of a saturated variable are O(1) (docs/performance.md).
  std::uint64_t digest() const;

  // Content stamp: equal stamps imply equal contents. Every mutation that
  // changes a fact restamps with a fresh thread-unique nonzero value;
  // copies carry the stamp with the content; stamp 0 is exactly the empty
  // value. A caller that remembers the stamps of two values after joining
  // them can prove a later join of the same (unchanged) pair is a no-op
  // and skip it — the SMM relay gossip loop does this once its subtree
  // saturates (docs/performance.md "Verifier hot path").
  std::uint64_t stamp() const noexcept { return stamp_; }

  std::string to_string() const;

  friend bool operator==(const Knowledge& a, const Knowledge& b) {
    return a.facts_ == b.facts_;
  }

 private:
  struct Entry {
    ProcessId process;
    PortInfo info;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  const Entry* find(ProcessId p) const noexcept;

  // Fresh thread-unique nonzero stamp (see stamp()).
  static std::uint64_t next_stamp() noexcept {
    thread_local std::uint64_t counter = 0;
    return ++counter;
  }
  void touch() noexcept {
    stamp_ = next_stamp();
    digest_valid_ = false;
  }

  // Sorted by process id, unique. Sortedness makes default equality
  // coincide with map equality.
  std::vector<Entry> facts_;
  std::uint64_t stamp_ = 0;
  mutable std::uint64_t cached_digest_ = 0;
  mutable bool digest_valid_ = false;
};

}  // namespace sesp
