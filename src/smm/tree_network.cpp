#include "smm/tree_network.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace sesp {

namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "sesp::TreeNetwork fatal: %s\n", what);
  std::abort();
}

// An endpoint of the level currently being grouped under new parents: either
// a leaf (port process) or an already-built relay that still needs a parent.
struct Endpoint {
  ProcessId pid;
  std::int32_t relay_index;  // -1 for leaves
};

}  // namespace

TreeNetwork::TreeNetwork(std::int32_t n, std::int32_t b, SharedMemory& mem,
                         ProcessId first_relay_pid)
    : n_(n), uplinks_(static_cast<std::size_t>(std::max(n, 0)), kNoVar) {
  if (n < 1) fail("need at least one leaf");
  if (n == 1) return;  // a single port process needs no communication
  if (b < 2) fail("communication requires b >= 2");

  // Children per parent node and children per shared variable.
  const std::int32_t arity = std::max<std::int32_t>(2, b - 1);
  const std::int32_t group = b - 1;  // children sharing one variable

  ProcessId next_pid = first_relay_pid;
  std::vector<Endpoint> level;
  level.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p) level.push_back(Endpoint{p, -1});

  while (level.size() > 1) {
    ++depth_;
    std::vector<Endpoint> next_level;
    for (std::size_t at = 0; at < level.size(); at += arity) {
      const std::size_t end =
          std::min(level.size(), at + static_cast<std::size_t>(arity));
      // A lone trailing endpoint would make a useless unary relay chain;
      // promote it directly to the next level instead.
      if (end - at == 1 && !next_level.empty()) {
        next_level.push_back(level[at]);
        break;
      }
      const ProcessId relay_pid = next_pid++;
      RelaySpec relay;
      relay.pid = relay_pid;
      for (std::size_t g = at; g < end;
           g += static_cast<std::size_t>(group)) {
        const std::size_t gend =
            std::min(end, g + static_cast<std::size_t>(group));
        std::vector<ProcessId> accessors{relay_pid};
        for (std::size_t c = g; c < gend; ++c)
          accessors.push_back(level[c].pid);
        const VarId var = mem.create_var(
            accessors, "tree:d" + std::to_string(depth_) + ":r" +
                           std::to_string(relay_pid) + ":g" +
                           std::to_string(g - at));
        relay.rotation.push_back(var);
        for (std::size_t c = g; c < gend; ++c) {
          const Endpoint& child = level[c];
          if (child.relay_index < 0) {
            uplinks_[static_cast<std::size_t>(child.pid)] = var;
          } else {
            relays_[static_cast<std::size_t>(child.relay_index)]
                .rotation.push_back(var);
          }
        }
      }
      relays_.push_back(std::move(relay));
      next_level.push_back(Endpoint{
          relay_pid, static_cast<std::int32_t>(relays_.size() - 1)});
    }
    level = std::move(next_level);
  }

  for (const RelaySpec& r : relays_)
    max_cycle_ = std::max(max_cycle_,
                          static_cast<std::int32_t>(r.rotation.size()));
}

VarId TreeNetwork::uplink(ProcessId leaf) const {
  if (leaf < 0 || leaf >= n_) fail("uplink of non-leaf");
  return uplinks_[static_cast<std::size_t>(leaf)];
}

}  // namespace sesp
