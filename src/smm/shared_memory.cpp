#include "smm/shared_memory.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace sesp {

namespace {
[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "sesp::SharedMemory fatal: %s\n", what.c_str());
  std::abort();
}
}  // namespace

SharedMemory::SharedMemory(std::int32_t access_bound) : b_(access_bound) {
  if (b_ < 1) fail("access bound b must be >= 1");
}

VarId SharedMemory::create_var(std::vector<ProcessId> accessors,
                               std::string label) {
  if (static_cast<std::int32_t>(accessors.size()) > b_)
    fail("variable '" + label + "' would have " +
         std::to_string(accessors.size()) + " accessors, b = " +
         std::to_string(b_));
  vars_.push_back(Var{Knowledge{}, std::move(accessors), std::move(label)});
  return static_cast<VarId>(vars_.size() - 1);
}

Knowledge& SharedMemory::access(VarId v, ProcessId p) {
  if (v < 0 || v >= num_vars()) fail("access of unknown variable");
  Var& var = vars_[static_cast<std::size_t>(v)];
  if (std::find(var.accessors.begin(), var.accessors.end(), p) ==
      var.accessors.end())
    fail("process " + std::to_string(p) + " is not an accessor of '" +
         var.label + "'");
  return var.value;
}

const Knowledge& SharedMemory::peek(VarId v) const {
  if (v < 0 || v >= num_vars()) fail("peek of unknown variable");
  return vars_[static_cast<std::size_t>(v)].value;
}

const std::vector<ProcessId>& SharedMemory::accessors(VarId v) const {
  if (v < 0 || v >= num_vars()) fail("accessors of unknown variable");
  return vars_[static_cast<std::size_t>(v)].accessors;
}

const std::string& SharedMemory::label(VarId v) const {
  if (v < 0 || v >= num_vars()) fail("label of unknown variable");
  return vars_[static_cast<std::size_t>(v)].label;
}

}  // namespace sesp
