#pragma once

// The Section-3 broadcast substrate for the SMM: a tree of relay processes
// and shared variables with the n port processes at the leaves, propagating
// a piece of information from any process to all others in O(log_b n) steps.
//
// Topology. For b >= 3 each internal node shares one "family" variable with
// its <= b-1 children (b accessors total), so a parent gathers its whole
// family in one step and the tree has arity b-1. For b == 2 a variable can
// only join two processes, so each parent-child edge gets its own variable
// and the tree is binary; a parent cycles through its two child variables
// and its parent variable.
//
// Gossip. Every relay keeps an accumulated Knowledge value and, on each
// step, read-modify-writes the next variable in its rotation, merging both
// ways. Because Knowledge merge is a commutative idempotent join, the
// propagation works under any admissible interleaving; only its *latency*
// depends on the schedule, and `latency_steps_bound()` gives the documented
// worst-case constant used in the reproduced upper-bound formulas.

#include <cstdint>
#include <vector>

#include "model/ids.hpp"
#include "smm/shared_memory.hpp"

namespace sesp {

struct RelaySpec {
  ProcessId pid = 0;
  // Variables this relay cycles through, one per step: child-side variables
  // first, then (except for the root) the variable shared with its parent.
  std::vector<VarId> rotation;
};

class TreeNetwork {
 public:
  // Builds the tree over port processes 0..n-1 in `mem`; relay processes get
  // ids first_relay_pid, first_relay_pid+1, ... Requires b >= 2 for n >= 2.
  TreeNetwork(std::int32_t n, std::int32_t b, SharedMemory& mem,
              ProcessId first_relay_pid);

  std::int32_t num_leaves() const noexcept { return n_; }
  std::int32_t num_relays() const noexcept {
    return static_cast<std::int32_t>(relays_.size());
  }
  const std::vector<RelaySpec>& relays() const noexcept { return relays_; }

  // The variable leaf p uses for all its tree accesses (its parent's
  // child-side variable). kNoVar when n == 1 (no tree needed).
  VarId uplink(ProcessId leaf) const;

  // Tree height in relay levels (0 when n == 1).
  std::int32_t depth() const noexcept { return depth_; }
  // Longest relay rotation (steps for a relay to revisit a variable).
  std::int32_t max_cycle_len() const noexcept { return max_cycle_; }

  // Worst-case number of *step periods* for a fact merged into any leaf's
  // uplink variable to become visible in every other leaf's uplink variable,
  // assuming every relay takes steps continuously. Per level a fact waits at
  // most one full rotation for the relay to read it and one more to write it
  // onward; it crosses <= 2*depth levels (up then down). The +2 covers the
  // boundary accesses. This is this implementation's concrete constant
  // behind the paper's O(log_b n).
  std::int64_t latency_steps_bound() const noexcept {
    return 4LL * depth_ * max_cycle_ + 2;
  }

 private:
  std::int32_t n_;
  std::int32_t depth_ = 0;
  std::int32_t max_cycle_ = 1;
  std::vector<RelaySpec> relays_;
  std::vector<VarId> uplinks_;
};

}  // namespace sesp
