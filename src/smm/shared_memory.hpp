#pragma once

// The shared-memory substrate (Section 2.1.1): a set of atomic
// read-modify-write variables, each accessible by at most b processes. The
// b-bound is declared up front (who may touch what) and enforced on every
// access, so a topology that violated the model would abort rather than
// silently produce non-reproducible results.

#include <cstdint>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "smm/knowledge.hpp"

namespace sesp {

class SharedMemory {
 public:
  explicit SharedMemory(std::int32_t access_bound /* b */);

  std::int32_t access_bound() const noexcept { return b_; }
  std::int32_t num_vars() const noexcept {
    return static_cast<std::int32_t>(vars_.size());
  }

  // Creates a variable and registers its (fixed) accessor set. Aborts if the
  // set exceeds b. `label` is for diagnostics.
  VarId create_var(std::vector<ProcessId> accessors, std::string label);

  // Atomic read-modify-write by `p`: returns a reference valid for the
  // duration of one step. Aborts if p is not a registered accessor.
  Knowledge& access(VarId v, ProcessId p);

  // Read-only peek that bypasses the accessor check, for checkers and
  // debugging only (never for algorithm steps).
  const Knowledge& peek(VarId v) const;

  const std::vector<ProcessId>& accessors(VarId v) const;
  const std::string& label(VarId v) const;

 private:
  struct Var {
    Knowledge value;
    std::vector<ProcessId> accessors;
    std::string label;
  };

  std::int32_t b_;
  std::vector<Var> vars_;
};

}  // namespace sesp
