#pragma once

// Algorithm interface for a *port process* in the SMM. Following Section 3,
// only the port-process role is algorithm-specific: tree relays have a fixed
// gossip behaviour supplied by the simulator, and `broadcast` is the
// encapsulated act of accessing the uplink variable.
//
// Each step the process chooses, from local state alone, whether to access
// its port variable (a port step) or its tree uplink (a communication step);
// the chosen variable is then read-modify-written atomically.

#include <memory>

#include "model/ids.hpp"
#include "smm/knowledge.hpp"
#include "timing/constraints.hpp"

namespace sesp {

enum class SmmChoice : std::uint8_t {
  kPort,  // access the port variable
  kTree,  // access the uplink variable (participate in broadcast)
};

class SmmPortAlgorithm {
 public:
  virtual ~SmmPortAlgorithm() = default;

  // Which variable to access at the next step; must depend only on local
  // state (the paper's steps choose their variable from the process state).
  virtual SmmChoice choose() const = 0;

  // The step was a port access. The port variable carries no cross-process
  // information (only this process accesses it), so the callback just
  // advances local state.
  virtual void on_port_access() = 0;

  // The step was a tree access: `advertised()` was merged into the uplink
  // variable and `snapshot` is the variable's merged content afterwards.
  virtual PortInfo advertised() const = 0;
  virtual void on_tree_snapshot(const Knowledge& snapshot) = 0;

  // True once the process is in an idle state (absorbing).
  virtual bool is_idle() const = 0;
};

class SmmAlgorithmFactory {
 public:
  virtual ~SmmAlgorithmFactory() = default;
  virtual std::unique_ptr<SmmPortAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const = 0;
  virtual const char* name() const = 0;
};

}  // namespace sesp
