#pragma once

// Declarative chaos plans. A FaultPlan names every way an execution may leave
// the paper's well-formed space (Section 2.2's admissibility assumptions):
//
//   * crash-stop       — a process halts before its k-th compute step,
//                        violating the "infinitely many steps" liveness
//                        clause (here: it never reaches an idle state);
//   * message drop     — a sent message is never delivered, violating the
//                        MPM's reliable-broadcast clause;
//   * message duplicate— a message is delivered twice, which no admissible
//                        network step sequence produces;
//   * message delay    — an extra delay pushes a delivery outside [d1, d2];
//   * timing violation — one step's gap is scaled outside the model's
//                        admissible band (periods / [c1, c2] / >= c1);
//   * write corruption — an SMM read-modify-write loses the variable's
//                        previous contents (a lost update).
//
// Plans are pure data: deterministic per-target entries plus seeded Bernoulli
// rates, so a recorded (plan, seed) pair reproduces the exact same chaos.
// FaultInjector turns a plan into the stateful hooks the simulators consume.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "util/ratio.hpp"

namespace sesp {

enum class FaultKind : std::uint8_t {
  kCrash,
  kDropMessage,
  kDuplicateMessage,
  kDelayMessage,
  kTimingViolation,
  kWriteCorruption,
};

const char* to_string(FaultKind kind);

// Crash-stop: `process` halts in place of taking its `at_step`-th compute
// step (0-based over its own steps).
struct CrashFault {
  ProcessId process = 0;
  std::int64_t at_step = 0;
};

// Scale the gap preceding `process`'s `at_step`-th compute step by
// `gap_scale` (> 1 breaks upper bounds / exact periods, < 1 breaks c1).
struct TimingFault {
  ProcessId process = 0;
  std::int64_t at_step = 0;
  Ratio gap_scale = Ratio(4);
};

// Message-level chaos (MPM / P2P substrates). Percentages are Bernoulli per
// sent message under the plan's seed; the id lists are deterministic
// predicates applied on top.
struct MessageFaults {
  std::uint32_t drop_percent = 0;
  std::uint32_t dup_percent = 0;
  std::uint32_t delay_percent = 0;
  Duration extra_delay = Duration(1);  // applied to dup / delay injections
  std::vector<MsgId> drop_ids;
  std::vector<MsgId> dup_ids;

  bool any() const noexcept {
    return drop_percent != 0 || dup_percent != 0 || delay_percent != 0 ||
           !drop_ids.empty() || !dup_ids.empty();
  }
};

// Shared-variable write corruption (SMM substrate). `corrupt_at` indexes the
// global sequence of corruption-eligible writes (tree/uplink accesses);
// `corrupt_percent` is Bernoulli per eligible write.
struct WriteFaults {
  std::uint32_t corrupt_percent = 0;
  std::vector<std::int64_t> corrupt_at;

  bool any() const noexcept {
    return corrupt_percent != 0 || !corrupt_at.empty();
  }
};

struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<TimingFault> timing;
  MessageFaults messages;
  WriteFaults writes;
  std::uint64_t seed = 0x0FA17ULL;

  bool empty() const noexcept {
    return crashes.empty() && timing.empty() && !messages.any() &&
           !writes.any();
  }

  std::string to_string() const;

  // Parses the CLI grammar: comma-separated clauses
  //   crash:P@K       crash process P before its K-th step
  //   timing:P@K*S    scale the gap before P's K-th step by rational S
  //   drop:N% | drop:#ID       drop rate / drop exactly message ID
  //   dup:N%  | dup:#ID        duplicate rate / duplicate message ID
  //   delay:N%                 extra-delay rate
  //   extra:R                  the extra delay (rational, default 1)
  //   corrupt:N% | corrupt:@K  corruption rate / corrupt K-th eligible write
  //   seed:N                   Bernoulli seed
  // Returns nullopt and sets *error on malformed input.
  static std::optional<FaultPlan> parse(const std::string& text,
                                        std::string* error = nullptr);

  // Seeded random plan over `num_processes` processes, for fuzzing: a mix of
  // crashes, loss/duplication/delay rates, timing violations and write
  // corruption, occasionally empty.
  static FaultPlan random(std::uint64_t seed, std::int32_t num_processes);
};

}  // namespace sesp
