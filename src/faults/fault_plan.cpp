#include "faults/fault_plan.hpp"

#include <sstream>

#include "model/trace_io.hpp"
#include "util/rng.hpp"

namespace sesp {

namespace {

// Splits "a,b,c" into clauses; empty clauses are skipped.
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : text) {
    if (c == sep) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool parse_int(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  std::size_t pos = 0;
  try {
    *out = std::stoll(text, &pos);
  } catch (...) {
    return false;
  }
  return pos == text.size();
}

// "N%" -> N in [0, 100].
bool parse_percent(const std::string& text, std::uint32_t* out) {
  if (text.empty() || text.back() != '%') return false;
  std::int64_t v = 0;
  if (!parse_int(text.substr(0, text.size() - 1), &v)) return false;
  if (v < 0 || v > 100) return false;
  *out = static_cast<std::uint32_t>(v);
  return true;
}

// "P@K" -> (process, step).
bool parse_at(const std::string& text, std::int64_t* process,
              std::int64_t* step) {
  const std::size_t at = text.find('@');
  if (at == std::string::npos) return false;
  return parse_int(text.substr(0, at), process) &&
         parse_int(text.substr(at + 1), step);
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kDropMessage: return "drop";
    case FaultKind::kDuplicateMessage: return "duplicate";
    case FaultKind::kDelayMessage: return "delay";
    case FaultKind::kTimingViolation: return "timing-violation";
    case FaultKind::kWriteCorruption: return "write-corruption";
  }
  return "unknown";
}

std::string FaultPlan::to_string() const {
  if (empty()) return "(no faults)";
  std::ostringstream os;
  const char* sep = "";
  for (const CrashFault& c : crashes) {
    os << sep << "crash:" << c.process << "@" << c.at_step;
    sep = ",";
  }
  for (const TimingFault& t : timing) {
    os << sep << "timing:" << t.process << "@" << t.at_step << "*"
       << t.gap_scale.to_string();
    sep = ",";
  }
  if (messages.drop_percent != 0) {
    os << sep << "drop:" << messages.drop_percent << "%";
    sep = ",";
  }
  for (const MsgId id : messages.drop_ids) {
    os << sep << "drop:#" << id;
    sep = ",";
  }
  if (messages.dup_percent != 0) {
    os << sep << "dup:" << messages.dup_percent << "%";
    sep = ",";
  }
  for (const MsgId id : messages.dup_ids) {
    os << sep << "dup:#" << id;
    sep = ",";
  }
  if (messages.delay_percent != 0) {
    os << sep << "delay:" << messages.delay_percent << "%";
    sep = ",";
  }
  if (messages.dup_percent != 0 || messages.delay_percent != 0 ||
      !messages.dup_ids.empty()) {
    os << sep << "extra:" << messages.extra_delay.to_string();
    sep = ",";
  }
  if (writes.corrupt_percent != 0) {
    os << sep << "corrupt:" << writes.corrupt_percent << "%";
    sep = ",";
  }
  for (const std::int64_t k : writes.corrupt_at) {
    os << sep << "corrupt:@" << k;
    sep = ",";
  }
  os << sep << "seed:" << seed;
  return os.str();
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& text,
                                          std::string* error) {
  auto fail = [error](const std::string& why) -> std::optional<FaultPlan> {
    if (error) *error = why;
    return std::nullopt;
  };

  FaultPlan plan;
  for (const std::string& clause : split(text, ',')) {
    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos)
      return fail("clause without ':': " + clause);
    const std::string key = clause.substr(0, colon);
    const std::string value = clause.substr(colon + 1);

    if (key == "crash") {
      std::int64_t p = 0, k = 0;
      if (!parse_at(value, &p, &k)) return fail("bad crash clause: " + clause);
      plan.crashes.push_back(
          CrashFault{static_cast<ProcessId>(p), k});
    } else if (key == "timing") {
      const std::size_t star = value.find('*');
      if (star == std::string::npos)
        return fail("timing clause needs '*scale': " + clause);
      std::int64_t p = 0, k = 0;
      if (!parse_at(value.substr(0, star), &p, &k))
        return fail("bad timing clause: " + clause);
      const auto scale = ratio_from_text(value.substr(star + 1));
      if (!scale || !scale->is_positive())
        return fail("bad timing scale: " + clause);
      plan.timing.push_back(
          TimingFault{static_cast<ProcessId>(p), k, *scale});
    } else if (key == "drop") {
      std::uint32_t pct = 0;
      std::int64_t id = 0;
      if (parse_percent(value, &pct)) plan.messages.drop_percent = pct;
      else if (!value.empty() && value[0] == '#' &&
               parse_int(value.substr(1), &id))
        plan.messages.drop_ids.push_back(id);
      else return fail("bad drop clause: " + clause);
    } else if (key == "dup") {
      std::uint32_t pct = 0;
      std::int64_t id = 0;
      if (parse_percent(value, &pct)) plan.messages.dup_percent = pct;
      else if (!value.empty() && value[0] == '#' &&
               parse_int(value.substr(1), &id))
        plan.messages.dup_ids.push_back(id);
      else return fail("bad dup clause: " + clause);
    } else if (key == "delay") {
      std::uint32_t pct = 0;
      if (!parse_percent(value, &pct))
        return fail("bad delay clause: " + clause);
      plan.messages.delay_percent = pct;
    } else if (key == "extra") {
      const auto r = ratio_from_text(value);
      if (!r || r->is_negative()) return fail("bad extra clause: " + clause);
      plan.messages.extra_delay = *r;
    } else if (key == "corrupt") {
      std::uint32_t pct = 0;
      std::int64_t k = 0;
      if (parse_percent(value, &pct)) plan.writes.corrupt_percent = pct;
      else if (!value.empty() && value[0] == '@' &&
               parse_int(value.substr(1), &k) && k >= 0)
        plan.writes.corrupt_at.push_back(k);
      else return fail("bad corrupt clause: " + clause);
    } else if (key == "seed") {
      std::int64_t s = 0;
      if (!parse_int(value, &s) || s < 0)
        return fail("bad seed clause: " + clause);
      plan.seed = static_cast<std::uint64_t>(s);
    } else {
      return fail("unknown fault clause: " + clause);
    }
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::int32_t num_processes) {
  Rng rng(seed ^ 0xFA017'5EEDULL);
  FaultPlan plan;
  plan.seed = rng.next_u64();

  const std::int32_t n = std::max(num_processes, 1);

  // Crashes: up to 2 distinct-ish processes, early steps so they matter.
  const std::uint64_t num_crashes = rng.next_below(3);
  for (std::uint64_t i = 0; i < num_crashes; ++i)
    plan.crashes.push_back(CrashFault{
        static_cast<ProcessId>(rng.next_below(static_cast<std::uint64_t>(n))),
        rng.next_int(0, 12)});

  // Message chaos rates.
  if (rng.next_bool(1, 2)) plan.messages.drop_percent =
      static_cast<std::uint32_t>(rng.next_int(0, 30));
  if (rng.next_bool(1, 3)) plan.messages.dup_percent =
      static_cast<std::uint32_t>(rng.next_int(0, 10));
  if (rng.next_bool(1, 3)) plan.messages.delay_percent =
      static_cast<std::uint32_t>(rng.next_int(0, 10));
  plan.messages.extra_delay = Ratio(rng.next_int(1, 8));

  // Timing violations: both directions (too slow and too fast).
  const std::uint64_t num_timing = rng.next_below(3);
  for (std::uint64_t i = 0; i < num_timing; ++i) {
    static const Ratio kScales[] = {Ratio(1, 8), Ratio(1, 4), Ratio(3),
                                    Ratio(8)};
    plan.timing.push_back(TimingFault{
        static_cast<ProcessId>(rng.next_below(static_cast<std::uint64_t>(n))),
        rng.next_int(0, 8), kScales[rng.next_below(4)]});
  }

  // Write corruption (SMM runs consume it; others ignore it).
  if (rng.next_bool(1, 3)) plan.writes.corrupt_percent =
      static_cast<std::uint32_t>(rng.next_int(0, 20));
  if (rng.next_bool(1, 4))
    plan.writes.corrupt_at.push_back(rng.next_int(0, 40));

  return plan;
}

}  // namespace sesp
