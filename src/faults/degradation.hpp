#pragma once

// Outcome taxonomy for runs that may have left the well-formed space. The
// robustness contract of the simulators is that every run — faulty or not —
// lands in exactly one of three buckets, never a silent wrong answer and
// never a process abort:
//
//   kSolved    — the trace is admissible and solves the (s, n) instance;
//   kDegraded  — the run ended (normally or via a watchdog) with an
//                admissible trace but fewer sessions / missing termination:
//                partial results, honestly reported;
//   kDiagnosed — the verifier localized an inadmissibility (exact step,
//                process, time) or the run raised a structural SimError.

#include <optional>
#include <string>

#include "faults/sim_error.hpp"
#include "session/verifier.hpp"

namespace sesp {

enum class RunOutcome : std::uint8_t { kSolved, kDegraded, kDiagnosed };

const char* to_string(RunOutcome outcome);

// Classifies one finished run. Watchdog stops (step/time budget,
// no-progress) count as graceful degradation — the trace up to the stop is
// still a well-formed partial result; all other SimErrors and every
// admissibility violation count as diagnosed.
RunOutcome classify_outcome(const std::optional<SimError>& error,
                            const Verdict& verdict);

// One-line explanation for reports: the admissibility violation site, the
// SimError, or the session shortfall — whichever applies.
std::string outcome_diagnostic(const std::optional<SimError>& error,
                               const Verdict& verdict,
                               const ProblemSpec& spec);

}  // namespace sesp
