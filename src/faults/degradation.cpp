#include "faults/degradation.hpp"

#include <sstream>

namespace sesp {

const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kSolved: return "solved";
    case RunOutcome::kDegraded: return "degraded";
    case RunOutcome::kDiagnosed: return "diagnosed";
  }
  return "unknown";
}

RunOutcome classify_outcome(const std::optional<SimError>& error,
                            const Verdict& verdict) {
  if (!verdict.admissible) return RunOutcome::kDiagnosed;
  if (error) {
    switch (error->code) {
      case SimErrorCode::kStepLimitExceeded:
      case SimErrorCode::kTimeLimitExceeded:
      case SimErrorCode::kNoProgress:
        return RunOutcome::kDegraded;  // watchdog stop, partial result stands
      default:
        return RunOutcome::kDiagnosed;
    }
  }
  return verdict.solves ? RunOutcome::kSolved : RunOutcome::kDegraded;
}

std::string outcome_diagnostic(const std::optional<SimError>& error,
                               const Verdict& verdict,
                               const ProblemSpec& spec) {
  std::ostringstream os;
  if (!verdict.admissible) {
    os << "inadmissible: " << verdict.admissibility_violation;
    return os.str();
  }
  if (error) {
    os << error->to_string();
    return os.str();
  }
  if (!verdict.solves) {
    os << "partial: sessions=" << verdict.sessions << "/" << spec.s
       << (verdict.all_ports_idle ? "" : ", some port never idles");
    return os.str();
  }
  os << "solved: sessions=" << verdict.sessions;
  return os.str();
}

}  // namespace sesp
