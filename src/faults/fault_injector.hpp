#pragma once

// Stateful execution engine for a FaultPlan. One injector instance serves one
// simulator run: the run loops call the hooks at the four places chaos can
// enter (before a compute step, at a send, when scheduling the next step,
// and on a shared-variable write), and the injector both decides the
// injection and records it in an ordered log so tests and reports can relate
// every observed anomaly to the fault that caused it.
//
// The hooks are deliberately cheap no-ops for empty plans; simulators accept
// a nullable injector and skip the calls entirely when none is attached.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "model/ids.hpp"
#include "util/ratio.hpp"
#include "util/rng.hpp"

namespace sesp {

// One injected fault occurrence, in injection order.
struct InjectedFault {
  FaultKind kind = FaultKind::kCrash;
  ProcessId process = kNetworkProcess;
  MsgId message = kNoMsg;
  std::int64_t step = -1;  // the target process's own step index, if any
  Time time;
  std::string detail;

  std::string to_string() const;
};

// What to do with one sent message.
struct MessageAction {
  bool drop = false;
  bool duplicate = false;
  Duration extra_delay = Duration(0);
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const noexcept { return plan_; }

  // True if `p` crash-stops instead of taking its `step_index`-th compute
  // step. Idempotent per process (crash-stop is absorbing); the first hit is
  // logged.
  bool crash_now(ProcessId p, std::int64_t step_index, const Time& t);
  bool crashed(ProcessId p) const {
    return std::find(crashed_.begin(), crashed_.end(), p) != crashed_.end();
  }
  std::int32_t crash_count() const {
    return static_cast<std::int32_t>(crashed_.size());
  }

  // Decides this message's fate at send time. Drop and duplicate/delay are
  // exclusive (a dropped message has no delivery to duplicate).
  MessageAction on_send(MsgId id, ProcessId sender, ProcessId recipient,
                        const Time& t);

  // Possibly perturbs the scheduler's chosen time for `p`'s
  // `step_index`-th step: the gap from `prev` is scaled by the matching
  // TimingFault. Returns `scheduled` unchanged when no fault matches.
  Time perturb_step_time(ProcessId p, std::int64_t step_index,
                         const Time& prev, const Time& scheduled);

  // True if this corruption-eligible shared-variable write should lose the
  // variable's previous contents. Called once per eligible write, in order.
  bool corrupt_write(VarId var, ProcessId writer, const Time& t);

  const std::vector<InjectedFault>& log() const noexcept { return log_; }
  std::int64_t injected(FaultKind kind) const;

 private:
  bool chance(std::uint32_t percent);

  FaultPlan plan_;
  Rng rng_;
  // Flat list, first-crash order; crash_now runs once per compute step, and
  // linear scans of a handful of ids beat a node-based set there.
  std::vector<ProcessId> crashed_;
  std::int64_t eligible_writes_ = 0;
  std::vector<InjectedFault> log_;
};

}  // namespace sesp
