#include "faults/sim_error.hpp"

#include <sstream>

namespace sesp {

const char* to_string(SimErrorCode code) {
  switch (code) {
    case SimErrorCode::kInvalidSpec: return "invalid-spec";
    case SimErrorCode::kUnknownMessage: return "unknown-message";
    case SimErrorCode::kBadRecipient: return "bad-recipient";
    case SimErrorCode::kStepLimitExceeded: return "step-limit";
    case SimErrorCode::kTimeLimitExceeded: return "time-limit";
    case SimErrorCode::kNoProgress: return "no-progress";
    case SimErrorCode::kNonMonotonicSchedule: return "non-monotonic-schedule";
  }
  return "unknown";
}

std::string SimError::to_string() const {
  std::ostringstream os;
  os << "[" << sesp::to_string(code) << "]";
  if (step_index >= 0) os << " step=" << step_index;
  if (process != kNetworkProcess) os << " process=" << process;
  if (time) os << " t=" << *time;
  if (message != kNoMsg) os << " msg=" << message;
  if (!detail.empty()) os << " " << detail;
  return os.str();
}

}  // namespace sesp
