#include "faults/fault_injector.hpp"

#include <algorithm>
#include <sstream>

namespace sesp {

std::string InjectedFault::to_string() const {
  std::ostringstream os;
  os << sesp::to_string(kind) << " t=" << time;
  if (process != kNetworkProcess) os << " process=" << process;
  if (step >= 0) os << " step=" << step;
  if (message != kNoMsg) os << " msg=" << message;
  if (!detail.empty()) os << " (" << detail << ")";
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

bool FaultInjector::chance(std::uint32_t percent) {
  if (percent == 0) return false;
  if (percent >= 100) return true;
  return rng_.next_bool(percent, 100);
}

bool FaultInjector::crash_now(ProcessId p, std::int64_t step_index,
                              const Time& t) {
  if (crashed(p)) return true;
  for (const CrashFault& c : plan_.crashes) {
    if (c.process == p && c.at_step <= step_index) {
      crashed_.push_back(p);
      log_.push_back(InjectedFault{FaultKind::kCrash, p, kNoMsg, step_index, t,
                                   "crash-stop"});
      return true;
    }
  }
  return false;
}

MessageAction FaultInjector::on_send(MsgId id, ProcessId sender,
                                     ProcessId recipient, const Time& t) {
  MessageAction act;
  const MessageFaults& mf = plan_.messages;
  const bool drop_listed =
      std::find(mf.drop_ids.begin(), mf.drop_ids.end(), id) !=
      mf.drop_ids.end();
  const bool dup_listed =
      std::find(mf.dup_ids.begin(), mf.dup_ids.end(), id) != mf.dup_ids.end();

  if (drop_listed || chance(mf.drop_percent)) {
    act.drop = true;
    // Direct concatenation: an ostringstream here costs a locale lookup per
    // dropped message, which dominates lossy sweeps (docs/performance.md).
    log_.push_back(InjectedFault{FaultKind::kDropMessage, sender, id, -1, t,
                                 std::to_string(sender) + "->" +
                                     std::to_string(recipient)});
    return act;
  }
  if (dup_listed || chance(mf.dup_percent)) {
    act.duplicate = true;
    act.extra_delay = mf.extra_delay;
    log_.push_back(InjectedFault{FaultKind::kDuplicateMessage, sender, id, -1,
                                 t, "second copy +" +
                                        mf.extra_delay.to_string()});
  }
  if (chance(mf.delay_percent)) {
    act.extra_delay += mf.extra_delay;
    log_.push_back(InjectedFault{FaultKind::kDelayMessage, sender, id, -1, t,
                                 "+" + mf.extra_delay.to_string()});
  }
  return act;
}

Time FaultInjector::perturb_step_time(ProcessId p, std::int64_t step_index,
                                      const Time& prev,
                                      const Time& scheduled) {
  for (const TimingFault& f : plan_.timing) {
    if (f.process != p || f.at_step != step_index) continue;
    const Duration gap = scheduled - prev;
    const Time perturbed = prev + gap * f.gap_scale;
    log_.push_back(InjectedFault{FaultKind::kTimingViolation, p, kNoMsg,
                                 step_index, perturbed,
                                 "gap " + gap.to_string() + " -> " +
                                     (gap * f.gap_scale).to_string()});
    return perturbed;
  }
  return scheduled;
}

bool FaultInjector::corrupt_write(VarId var, ProcessId writer, const Time& t) {
  const std::int64_t index = eligible_writes_++;
  const WriteFaults& wf = plan_.writes;
  const bool listed = std::find(wf.corrupt_at.begin(), wf.corrupt_at.end(),
                                index) != wf.corrupt_at.end();
  if (!listed && !chance(wf.corrupt_percent)) return false;
  log_.push_back(InjectedFault{FaultKind::kWriteCorruption, writer, kNoMsg,
                               index, t, "lost update of var " +
                                             std::to_string(var)});
  return true;
}

std::int64_t FaultInjector::injected(FaultKind kind) const {
  std::int64_t count = 0;
  for (const InjectedFault& f : log_)
    if (f.kind == kind) ++count;
  return count;
}

}  // namespace sesp
