#pragma once

// Structured diagnostics for ill-formed executions. The paper's admissibility
// proofs quantify over well-formed computations only; once faults are
// injected (or a harness bug corrupts a schedule), the simulators must stop
// *reporting* instead of aborting. A SimError pinpoints where a run left the
// well-formed space: which step, which process, at what model time, and why.
// Every former hard-abort branch in the run loops and the MPM network now
// produces one of these instead.

#include <cstdint>
#include <optional>
#include <string>

#include "model/ids.hpp"
#include "util/ratio.hpp"

namespace sesp {

enum class SimErrorCode : std::uint8_t {
  kInvalidSpec,           // problem spec / topology rejected before stepping
  kUnknownMessage,        // delivery of a MsgId not in transit
  kBadRecipient,          // send addressed outside the process range
  kStepLimitExceeded,     // watchdog: compute-step budget exhausted
  kTimeLimitExceeded,     // watchdog: model-time budget exhausted
  kNoProgress,            // watchdog: event time pinned (zero-gap livelock)
  kNonMonotonicSchedule,  // scheduler returned a step time before the past
};

const char* to_string(SimErrorCode code);

struct SimError {
  SimErrorCode code = SimErrorCode::kInvalidSpec;
  std::string detail;  // human-readable cause

  // Location of the failure, where known. step_index is the number of trace
  // steps recorded when the error was raised (i.e. the index the next step
  // would have had); -1 when the run never started.
  std::int64_t step_index = -1;
  ProcessId process = kNetworkProcess;
  std::optional<Time> time;
  MsgId message = kNoMsg;

  std::string to_string() const;
};

}  // namespace sesp
