file(REMOVE_RECURSE
  "CMakeFiles/admissibility_test.dir/admissibility_test.cpp.o"
  "CMakeFiles/admissibility_test.dir/admissibility_test.cpp.o.d"
  "admissibility_test"
  "admissibility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admissibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
