file(REMOVE_RECURSE
  "CMakeFiles/tree_network_test.dir/tree_network_test.cpp.o"
  "CMakeFiles/tree_network_test.dir/tree_network_test.cpp.o.d"
  "tree_network_test"
  "tree_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
