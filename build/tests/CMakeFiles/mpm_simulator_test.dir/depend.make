# Empty dependencies file for mpm_simulator_test.
# This may be replaced when dependencies are built.
