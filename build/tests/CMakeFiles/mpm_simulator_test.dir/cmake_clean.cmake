file(REMOVE_RECURSE
  "CMakeFiles/mpm_simulator_test.dir/mpm_simulator_test.cpp.o"
  "CMakeFiles/mpm_simulator_test.dir/mpm_simulator_test.cpp.o.d"
  "mpm_simulator_test"
  "mpm_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpm_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
