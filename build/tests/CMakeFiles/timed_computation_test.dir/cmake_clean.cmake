file(REMOVE_RECURSE
  "CMakeFiles/timed_computation_test.dir/timed_computation_test.cpp.o"
  "CMakeFiles/timed_computation_test.dir/timed_computation_test.cpp.o.d"
  "timed_computation_test"
  "timed_computation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timed_computation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
