# Empty compiler generated dependencies file for timed_computation_test.
# This may be replaced when dependencies are built.
