file(REMOVE_RECURSE
  "CMakeFiles/smm_simulator_test.dir/smm_simulator_test.cpp.o"
  "CMakeFiles/smm_simulator_test.dir/smm_simulator_test.cpp.o.d"
  "smm_simulator_test"
  "smm_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smm_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
