# Empty dependencies file for smm_simulator_test.
# This may be replaced when dependencies are built.
