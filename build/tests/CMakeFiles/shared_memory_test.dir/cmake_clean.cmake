file(REMOVE_RECURSE
  "CMakeFiles/shared_memory_test.dir/shared_memory_test.cpp.o"
  "CMakeFiles/shared_memory_test.dir/shared_memory_test.cpp.o.d"
  "shared_memory_test"
  "shared_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
