# Empty compiler generated dependencies file for shared_memory_test.
# This may be replaced when dependencies are built.
