file(REMOVE_RECURSE
  "CMakeFiles/retimer_property_test.dir/retimer_property_test.cpp.o"
  "CMakeFiles/retimer_property_test.dir/retimer_property_test.cpp.o.d"
  "retimer_property_test"
  "retimer_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retimer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
