# Empty compiler generated dependencies file for retimer_property_test.
# This may be replaced when dependencies are built.
