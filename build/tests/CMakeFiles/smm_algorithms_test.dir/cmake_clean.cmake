file(REMOVE_RECURSE
  "CMakeFiles/smm_algorithms_test.dir/smm_algorithms_test.cpp.o"
  "CMakeFiles/smm_algorithms_test.dir/smm_algorithms_test.cpp.o.d"
  "smm_algorithms_test"
  "smm_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smm_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
