# Empty dependencies file for smm_algorithms_test.
# This may be replaced when dependencies are built.
