file(REMOVE_RECURSE
  "CMakeFiles/ratio_test.dir/ratio_test.cpp.o"
  "CMakeFiles/ratio_test.dir/ratio_test.cpp.o.d"
  "ratio_test"
  "ratio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ratio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
