file(REMOVE_RECURSE
  "CMakeFiles/causality_test.dir/causality_test.cpp.o"
  "CMakeFiles/causality_test.dir/causality_test.cpp.o.d"
  "causality_test"
  "causality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
