# Empty dependencies file for p2p_simulator_test.
# This may be replaced when dependencies are built.
