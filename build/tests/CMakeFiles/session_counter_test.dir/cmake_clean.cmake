file(REMOVE_RECURSE
  "CMakeFiles/session_counter_test.dir/session_counter_test.cpp.o"
  "CMakeFiles/session_counter_test.dir/session_counter_test.cpp.o.d"
  "session_counter_test"
  "session_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
