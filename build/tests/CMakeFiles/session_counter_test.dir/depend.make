# Empty dependencies file for session_counter_test.
# This may be replaced when dependencies are built.
