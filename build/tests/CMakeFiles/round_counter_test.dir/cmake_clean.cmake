file(REMOVE_RECURSE
  "CMakeFiles/round_counter_test.dir/round_counter_test.cpp.o"
  "CMakeFiles/round_counter_test.dir/round_counter_test.cpp.o.d"
  "round_counter_test"
  "round_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
