# Empty compiler generated dependencies file for round_counter_test.
# This may be replaced when dependencies are built.
