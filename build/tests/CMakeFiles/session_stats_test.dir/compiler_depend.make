# Empty compiler generated dependencies file for session_stats_test.
# This may be replaced when dependencies are built.
