file(REMOVE_RECURSE
  "CMakeFiles/session_stats_test.dir/session_stats_test.cpp.o"
  "CMakeFiles/session_stats_test.dir/session_stats_test.cpp.o.d"
  "session_stats_test"
  "session_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
