# Empty compiler generated dependencies file for mpm_algorithms_test.
# This may be replaced when dependencies are built.
