file(REMOVE_RECURSE
  "CMakeFiles/mpm_algorithms_test.dir/mpm_algorithms_test.cpp.o"
  "CMakeFiles/mpm_algorithms_test.dir/mpm_algorithms_test.cpp.o.d"
  "mpm_algorithms_test"
  "mpm_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpm_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
