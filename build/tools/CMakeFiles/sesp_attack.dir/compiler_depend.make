# Empty compiler generated dependencies file for sesp_attack.
# This may be replaced when dependencies are built.
