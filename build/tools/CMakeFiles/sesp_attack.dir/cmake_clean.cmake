file(REMOVE_RECURSE
  "CMakeFiles/sesp_attack.dir/sesp_attack.cpp.o"
  "CMakeFiles/sesp_attack.dir/sesp_attack.cpp.o.d"
  "sesp_attack"
  "sesp_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesp_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
