# Empty dependencies file for sesp_cli.
# This may be replaced when dependencies are built.
