file(REMOVE_RECURSE
  "CMakeFiles/sesp_cli.dir/sesp_cli.cpp.o"
  "CMakeFiles/sesp_cli.dir/sesp_cli.cpp.o.d"
  "sesp_cli"
  "sesp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sesp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
