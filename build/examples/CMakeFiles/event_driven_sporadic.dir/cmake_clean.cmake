file(REMOVE_RECURSE
  "CMakeFiles/event_driven_sporadic.dir/event_driven_sporadic.cpp.o"
  "CMakeFiles/event_driven_sporadic.dir/event_driven_sporadic.cpp.o.d"
  "event_driven_sporadic"
  "event_driven_sporadic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_driven_sporadic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
