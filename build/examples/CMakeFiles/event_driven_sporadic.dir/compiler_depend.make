# Empty compiler generated dependencies file for event_driven_sporadic.
# This may be replaced when dependencies are built.
