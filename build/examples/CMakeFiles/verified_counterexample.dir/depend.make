# Empty dependencies file for verified_counterexample.
# This may be replaced when dependencies are built.
