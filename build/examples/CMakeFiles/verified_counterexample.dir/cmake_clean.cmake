file(REMOVE_RECURSE
  "CMakeFiles/verified_counterexample.dir/verified_counterexample.cpp.o"
  "CMakeFiles/verified_counterexample.dir/verified_counterexample.cpp.o.d"
  "verified_counterexample"
  "verified_counterexample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
