# Empty compiler generated dependencies file for avionics_periodic.
# This may be replaced when dependencies are built.
