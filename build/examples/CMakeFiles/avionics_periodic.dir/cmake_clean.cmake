file(REMOVE_RECURSE
  "CMakeFiles/avionics_periodic.dir/avionics_periodic.cpp.o"
  "CMakeFiles/avionics_periodic.dir/avionics_periodic.cpp.o.d"
  "avionics_periodic"
  "avionics_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avionics_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
