file(REMOVE_RECURSE
  "CMakeFiles/paper_tables.dir/paper_tables.cpp.o"
  "CMakeFiles/paper_tables.dir/paper_tables.cpp.o.d"
  "paper_tables"
  "paper_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
