# Empty dependencies file for paper_tables.
# This may be replaced when dependencies are built.
