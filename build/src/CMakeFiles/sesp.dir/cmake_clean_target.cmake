file(REMOVE_RECURSE
  "libsesp.a"
)
