
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/certificate.cpp" "src/CMakeFiles/sesp.dir/adversary/certificate.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/adversary/certificate.cpp.o.d"
  "/root/repo/src/adversary/contamination.cpp" "src/CMakeFiles/sesp.dir/adversary/contamination.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/adversary/contamination.cpp.o.d"
  "/root/repo/src/adversary/delay_strategies.cpp" "src/CMakeFiles/sesp.dir/adversary/delay_strategies.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/adversary/delay_strategies.cpp.o.d"
  "/root/repo/src/adversary/exhaustive.cpp" "src/CMakeFiles/sesp.dir/adversary/exhaustive.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/adversary/exhaustive.cpp.o.d"
  "/root/repo/src/adversary/periodic_attack.cpp" "src/CMakeFiles/sesp.dir/adversary/periodic_attack.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/adversary/periodic_attack.cpp.o.d"
  "/root/repo/src/adversary/semisync_mp_retimer.cpp" "src/CMakeFiles/sesp.dir/adversary/semisync_mp_retimer.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/adversary/semisync_mp_retimer.cpp.o.d"
  "/root/repo/src/adversary/semisync_retimer.cpp" "src/CMakeFiles/sesp.dir/adversary/semisync_retimer.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/adversary/semisync_retimer.cpp.o.d"
  "/root/repo/src/adversary/sporadic_retimer.cpp" "src/CMakeFiles/sesp.dir/adversary/sporadic_retimer.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/adversary/sporadic_retimer.cpp.o.d"
  "/root/repo/src/adversary/step_schedulers.cpp" "src/CMakeFiles/sesp.dir/adversary/step_schedulers.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/adversary/step_schedulers.cpp.o.d"
  "/root/repo/src/algorithms/mpm/async_alg.cpp" "src/CMakeFiles/sesp.dir/algorithms/mpm/async_alg.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/mpm/async_alg.cpp.o.d"
  "/root/repo/src/algorithms/mpm/broken_algs.cpp" "src/CMakeFiles/sesp.dir/algorithms/mpm/broken_algs.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/mpm/broken_algs.cpp.o.d"
  "/root/repo/src/algorithms/mpm/periodic_alg.cpp" "src/CMakeFiles/sesp.dir/algorithms/mpm/periodic_alg.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/mpm/periodic_alg.cpp.o.d"
  "/root/repo/src/algorithms/mpm/semisync_alg.cpp" "src/CMakeFiles/sesp.dir/algorithms/mpm/semisync_alg.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/mpm/semisync_alg.cpp.o.d"
  "/root/repo/src/algorithms/mpm/sporadic_alg.cpp" "src/CMakeFiles/sesp.dir/algorithms/mpm/sporadic_alg.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/mpm/sporadic_alg.cpp.o.d"
  "/root/repo/src/algorithms/mpm/sync_alg.cpp" "src/CMakeFiles/sesp.dir/algorithms/mpm/sync_alg.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/mpm/sync_alg.cpp.o.d"
  "/root/repo/src/algorithms/p2p/knowledge_algs.cpp" "src/CMakeFiles/sesp.dir/algorithms/p2p/knowledge_algs.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/p2p/knowledge_algs.cpp.o.d"
  "/root/repo/src/algorithms/smm/async_alg.cpp" "src/CMakeFiles/sesp.dir/algorithms/smm/async_alg.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/smm/async_alg.cpp.o.d"
  "/root/repo/src/algorithms/smm/broken_algs.cpp" "src/CMakeFiles/sesp.dir/algorithms/smm/broken_algs.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/smm/broken_algs.cpp.o.d"
  "/root/repo/src/algorithms/smm/periodic_alg.cpp" "src/CMakeFiles/sesp.dir/algorithms/smm/periodic_alg.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/smm/periodic_alg.cpp.o.d"
  "/root/repo/src/algorithms/smm/semisync_alg.cpp" "src/CMakeFiles/sesp.dir/algorithms/smm/semisync_alg.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/smm/semisync_alg.cpp.o.d"
  "/root/repo/src/algorithms/smm/sync_alg.cpp" "src/CMakeFiles/sesp.dir/algorithms/smm/sync_alg.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/algorithms/smm/sync_alg.cpp.o.d"
  "/root/repo/src/analysis/bounds.cpp" "src/CMakeFiles/sesp.dir/analysis/bounds.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/analysis/bounds.cpp.o.d"
  "/root/repo/src/analysis/causality.cpp" "src/CMakeFiles/sesp.dir/analysis/causality.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/analysis/causality.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/sesp.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/session_stats.cpp" "src/CMakeFiles/sesp.dir/analysis/session_stats.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/analysis/session_stats.cpp.o.d"
  "/root/repo/src/analysis/timeline.cpp" "src/CMakeFiles/sesp.dir/analysis/timeline.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/analysis/timeline.cpp.o.d"
  "/root/repo/src/model/step_record.cpp" "src/CMakeFiles/sesp.dir/model/step_record.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/model/step_record.cpp.o.d"
  "/root/repo/src/model/timed_computation.cpp" "src/CMakeFiles/sesp.dir/model/timed_computation.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/model/timed_computation.cpp.o.d"
  "/root/repo/src/model/trace_io.cpp" "src/CMakeFiles/sesp.dir/model/trace_io.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/model/trace_io.cpp.o.d"
  "/root/repo/src/mpm/mpm_simulator.cpp" "src/CMakeFiles/sesp.dir/mpm/mpm_simulator.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/mpm/mpm_simulator.cpp.o.d"
  "/root/repo/src/mpm/network.cpp" "src/CMakeFiles/sesp.dir/mpm/network.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/mpm/network.cpp.o.d"
  "/root/repo/src/mpm/topology.cpp" "src/CMakeFiles/sesp.dir/mpm/topology.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/mpm/topology.cpp.o.d"
  "/root/repo/src/p2p/p2p_simulator.cpp" "src/CMakeFiles/sesp.dir/p2p/p2p_simulator.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/p2p/p2p_simulator.cpp.o.d"
  "/root/repo/src/session/round_counter.cpp" "src/CMakeFiles/sesp.dir/session/round_counter.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/session/round_counter.cpp.o.d"
  "/root/repo/src/session/session_counter.cpp" "src/CMakeFiles/sesp.dir/session/session_counter.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/session/session_counter.cpp.o.d"
  "/root/repo/src/session/verifier.cpp" "src/CMakeFiles/sesp.dir/session/verifier.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/session/verifier.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/sesp.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/replay.cpp" "src/CMakeFiles/sesp.dir/sim/replay.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/sim/replay.cpp.o.d"
  "/root/repo/src/smm/knowledge.cpp" "src/CMakeFiles/sesp.dir/smm/knowledge.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/smm/knowledge.cpp.o.d"
  "/root/repo/src/smm/shared_memory.cpp" "src/CMakeFiles/sesp.dir/smm/shared_memory.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/smm/shared_memory.cpp.o.d"
  "/root/repo/src/smm/smm_simulator.cpp" "src/CMakeFiles/sesp.dir/smm/smm_simulator.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/smm/smm_simulator.cpp.o.d"
  "/root/repo/src/smm/tree_network.cpp" "src/CMakeFiles/sesp.dir/smm/tree_network.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/smm/tree_network.cpp.o.d"
  "/root/repo/src/timing/admissibility.cpp" "src/CMakeFiles/sesp.dir/timing/admissibility.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/timing/admissibility.cpp.o.d"
  "/root/repo/src/timing/constraints.cpp" "src/CMakeFiles/sesp.dir/timing/constraints.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/timing/constraints.cpp.o.d"
  "/root/repo/src/util/ratio.cpp" "src/CMakeFiles/sesp.dir/util/ratio.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/util/ratio.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/sesp.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/sesp.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/sesp.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/sesp.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
