# Empty dependencies file for sesp.
# This may be replaced when dependencies are built.
