# Empty dependencies file for bench_table1_sporadic.
# This may be replaced when dependencies are built.
