file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sporadic.dir/bench_table1_sporadic.cpp.o"
  "CMakeFiles/bench_table1_sporadic.dir/bench_table1_sporadic.cpp.o.d"
  "bench_table1_sporadic"
  "bench_table1_sporadic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sporadic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
