file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_semisync.dir/bench_table1_semisync.cpp.o"
  "CMakeFiles/bench_table1_semisync.dir/bench_table1_semisync.cpp.o.d"
  "bench_table1_semisync"
  "bench_table1_semisync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_semisync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
