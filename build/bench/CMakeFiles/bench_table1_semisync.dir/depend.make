# Empty dependencies file for bench_table1_semisync.
# This may be replaced when dependencies are built.
