file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_sync.dir/bench_table1_sync.cpp.o"
  "CMakeFiles/bench_table1_sync.dir/bench_table1_sync.cpp.o.d"
  "bench_table1_sync"
  "bench_table1_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
