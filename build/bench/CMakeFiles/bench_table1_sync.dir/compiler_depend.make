# Empty compiler generated dependencies file for bench_table1_sync.
# This may be replaced when dependencies are built.
