# Empty dependencies file for bench_table1_async.
# This may be replaced when dependencies are built.
