file(REMOVE_RECURSE
  "CMakeFiles/bench_diameter.dir/bench_diameter.cpp.o"
  "CMakeFiles/bench_diameter.dir/bench_diameter.cpp.o.d"
  "bench_diameter"
  "bench_diameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
