file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_periodic.dir/bench_table1_periodic.cpp.o"
  "CMakeFiles/bench_table1_periodic.dir/bench_table1_periodic.cpp.o.d"
  "bench_table1_periodic"
  "bench_table1_periodic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_periodic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
