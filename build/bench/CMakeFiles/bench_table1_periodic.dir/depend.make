# Empty dependencies file for bench_table1_periodic.
# This may be replaced when dependencies are built.
