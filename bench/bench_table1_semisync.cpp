// Reproduces Table 1, row "Semi-sync." (Section 5 and [4]):
//   SM: L = min{floor(c2/2c1), floor(log_b n)} * c2 * (s-1)
//       U = min{(floor(c2/c1)+1)*c2, O(log_b n)*c2} * (s-1) + c2
//   MP: L = min{floor(c2/2c1)*c2, d2+c2} * (s-1)
//       U = min{(floor(c2/c1)+1)*c2, d2+c2} * (s-1) + c2
//
// The sweep over c2/c1 (with fixed communication cost) exhibits the min's
// crossover: step counting wins while the ratio is small, communication
// takes over once one broadcast beats floor(c2/c1)+1 own steps.

#include <iostream>
#include <string>

#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "analysis/bounds.hpp"
#include "analysis/report.hpp"
#include "obs/bench_record.hpp"
#include "sim/experiment.hpp"

using namespace sesp;

int main() {
  obs::BenchRecorder recorder("table1_semisync");
  bool ok = true;

  {
    BoundReport report(
        "Table 1 / semi-sync SM (auto strategy; crossover over c2/c1 and n)");
    for (const std::int64_t s : {2, 4, 8}) {
      for (const std::int32_t n : {4, 16, 64}) {
        for (const std::int64_t ratio : {2, 8, 32, 128}) {
          const ProblemSpec spec{s, n, 2};
          const Duration c1(1), c2(ratio);
          const auto constraints =
              TimingConstraints::semi_synchronous(c1, c2);
          SemiSyncSmmFactory factory;  // kAuto
          const WorstCase wc = smm_worst_case(spec, constraints, factory,
                                              /*random_runs=*/3);
          const char* branch =
              SemiSyncSmmFactory::pick(spec, constraints) ==
                      SmmSemiSyncStrategy::kStepCount
                  ? "steps"
                  : "comm";
          report.add_time_row(
              "SM s=" + std::to_string(s) + " n=" + std::to_string(n) +
                  " c2/c1=" + std::to_string(ratio) + " [" + branch + "]",
              bounds::semisync_sm_lower(spec, c1, c2), wc,
              bounds::semisync_sm_upper(spec, c1, c2,
                                        smm_tree_latency_steps(n, 2)));
        }
      }
    }
    report.print(std::cout);
    report.append_rows(recorder);
    ok = ok && report.all_ok();
    std::cout << '\n';
  }

  {
    BoundReport report(
        "Table 1 / semi-sync MP (auto strategy; crossover over c2/c1 vs d2)");
    for (const std::int64_t s : {2, 4, 8}) {
      for (const std::int64_t ratio : {2, 8, 32}) {
        for (const std::int64_t d2v : {1, 20, 400}) {
          const ProblemSpec spec{s, 4, 2};
          const Duration c1(1), c2(ratio), d2(d2v);
          const auto constraints =
              TimingConstraints::semi_synchronous(c1, c2, d2);
          SemiSyncMpmFactory factory;  // kAuto
          const WorstCase wc = mpm_worst_case(spec, constraints, factory,
                                              /*random_runs=*/3);
          const char* branch = SemiSyncMpmFactory::pick(constraints) ==
                                       SemiSyncStrategy::kStepCount
                                   ? "steps"
                                   : "comm";
          report.add_time_row(
              "MP s=" + std::to_string(s) + " c2/c1=" + std::to_string(ratio) +
                  " d2=" + std::to_string(d2v) + " [" + branch + "]",
              bounds::semisync_mp_lower(spec, c1, c2, d2), wc,
              bounds::semisync_mp_upper(spec, c1, c2, d2));
        }
      }
    }
    report.print(std::cout);
    report.append_rows(recorder);
    ok = ok && report.all_ok();
  }

  return recorder.finish(ok);
}
