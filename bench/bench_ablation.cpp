// Ablations of the design choices DESIGN.md calls out:
//
//  1. A(sp)'s condition 2 (the elapsed-time inference the sporadic model
//     uniquely enables). Disabling it leaves a correct but slower algorithm
//     whose per-session cost is pinned to the d2 round trip; with condition
//     2, tight delay windows (large d1) let sessions close after ~u time.
//  2. The A(p) waiting-phase alternation in shared memory. Tree-only
//     waiting loses sessions under heterogeneous periods (it is simply
//     wrong); alternation restores correctness at <= 2x step cost.
//  3. The broadcast-tree access bound b: larger b flattens the tree and
//     shrinks the O(log_b n) term of the periodic/asynchronous SM bounds.

#include <iostream>
#include <string>
#include <vector>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

#include "obs/bench_record.hpp"

using namespace sesp;

int main() {
  obs::BenchRecorder recorder("ablation");
  bool ok = true;

  {
    std::cout << "== Ablation 1: A(sp) condition 2 (s=8, n=4, c1=1, d2=40) "
                 "==\n";
    TextTable table({"d1", "u", "with cond2", "cond1 only", "speedup",
                     "both solve"});
    for (const std::int64_t d1v : {36, 32, 24, 8, 0}) {
      const ProblemSpec spec{8, 4, 2};
      const auto constraints =
          TimingConstraints::sporadic(Duration(1), Duration(d1v), Duration(40));
      SporadicMpmFactory with(-1, true);
      SporadicMpmFactory without(-1, false);
      FixedPeriodScheduler sched_a(spec.n, Duration(1));
      FixedDelay delay_a{Duration(40)};
      const MpmOutcome a =
          run_mpm_once(spec, constraints, with, sched_a, delay_a);
      FixedPeriodScheduler sched_b(spec.n, Duration(1));
      FixedDelay delay_b{Duration(40)};
      const MpmOutcome b =
          run_mpm_once(spec, constraints, without, sched_b, delay_b);
      const bool both = a.verdict.solves && b.verdict.solves;
      ok = ok && both;
      // Condition 2 must never hurt.
      ok = ok && *a.verdict.termination_time <= *b.verdict.termination_time;
      table.add_row({std::to_string(d1v), std::to_string(40 - d1v),
                     a.verdict.termination_time->to_string(),
                     b.verdict.termination_time->to_string(),
                     fmt_ratio_of(*b.verdict.termination_time,
                                  *a.verdict.termination_time),
                     both ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "(speedup = cond1-only time / full time; grows as d1 -> d2)"
                 "\n\n";
  }

  {
    std::cout << "== Ablation 2: A(p) waiting-phase alternation (SM, s=6, "
                 "n=4, b=2, port 0 slow) ==\n";
    TextTable table({"slow period", "alternating: sessions", "solves",
                     "tree-only: sessions", "solves"});
    for (const std::int64_t slow : {1, 2, 4, 16}) {
      const ProblemSpec spec{6, 4, 2};
      const std::int32_t total = smm_total_processes(spec.n, spec.b);
      std::vector<Duration> periods(static_cast<std::size_t>(total),
                                    Duration(1));
      periods[0] = Duration(slow);
      const auto constraints = TimingConstraints::periodic(periods);
      PeriodicSmmFactory alternating;
      TreeOnlyWaitPeriodicSmmFactory tree_only;
      FixedPeriodScheduler sched_a(periods);
      const SmmOutcome a =
          run_smm_once(spec, constraints, alternating, sched_a);
      FixedPeriodScheduler sched_b(periods);
      const SmmOutcome b = run_smm_once(spec, constraints, tree_only, sched_b);
      // The alternating variant must always solve; the tree-only variant
      // must fail once the period spread is large enough.
      ok = ok && a.verdict.solves;
      if (slow >= 4) ok = ok && !b.verdict.solves;
      table.add_row({std::to_string(slow),
                     std::to_string(a.verdict.sessions),
                     a.verdict.solves ? "yes" : "NO",
                     std::to_string(b.verdict.sessions),
                     b.verdict.solves ? "yes" : "no"});
    }
    table.print(std::cout);
    std::cout << "(tree-only waiting starves sessions once port 0 is slow "
                 "enough)\n\n";
  }

  {
    std::cout << "== Ablation 3: tree access bound b (A(p) SM, s=2, n=64, "
                 "uniform periods) ==\n";
    TextTable table({"b", "relays", "depth", "latency bound (steps)",
                     "measured time", "solves"});
    Ratio prev_time(0);
    for (const std::int32_t b : {2, 3, 5, 9, 17}) {
      const ProblemSpec spec{2, 64, b};
      const std::int32_t total = smm_total_processes(spec.n, b);
      const auto constraints = TimingConstraints::periodic(
          std::vector<Duration>(static_cast<std::size_t>(total), Duration(1)));
      PeriodicSmmFactory factory;
      FixedPeriodScheduler sched(total, Duration(1));
      const SmmOutcome out = run_smm_once(spec, constraints, factory, sched);
      ok = ok && out.verdict.solves;
      table.add_row({std::to_string(b), std::to_string(out.run.num_relays),
                     std::to_string(out.run.tree_depth),
                     std::to_string(out.run.tree_latency_steps),
                     out.verdict.termination_time->to_string(),
                     out.verdict.solves ? "yes" : "NO"});
      prev_time = *out.verdict.termination_time;
    }
    table.print(std::cout);
    std::cout << "(flatter trees -> smaller O(log_b n) term)\n";
  }

  std::cout << (ok ? "[OK] all ablations behave as designed\n"
                   : "[FAIL] an ablation violated its expectation\n");
  return recorder.finish(ok);
}
