// Exhaustive adversary on tiny instances: enumerate EVERY schedule on a
// discrete gap/delay grid, establishing the true worst case and checking
// the algorithm against all of them — then compare with what the sampled
// adversary family found and with the Table 1 upper bound. The family is
// validated when its max matches the exhaustive max; the bound when the
// exhaustive max stays below it.

#include <iostream>
#include <string>

#include "adversary/exhaustive.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

#include "obs/bench_record.hpp"

using namespace sesp;

int main() {
  obs::BenchRecorder recorder("exhaustive");
  bool ok = true;

  std::cout << "== Exhaustive vs sampled worst case (tiny instances) ==\n";
  TextTable table({"instance", "algorithm", "schedules", "exhaustive worst",
                   "sampled worst", "Table 1 U", "all solved",
                   "sampled = true worst"});

  // Semi-synchronous step counting, n=2 s=2, gaps {c1, c2}, delays {d2}.
  {
    const ProblemSpec spec{2, 2, 2};
    const Duration c1(1), c2(4), d2(1);
    const auto constraints = TimingConstraints::semi_synchronous(c1, c2, d2);
    SemiSyncMpmFactory factory(SemiSyncStrategy::kStepCount);
    const ExhaustiveResult ex =
        explore_mpm(spec, constraints, factory, {c1, c2}, {d2});
    const WorstCase sampled = mpm_worst_case(spec, constraints, factory, 4);
    const Ratio upper = Ratio((c2 / c1).floor() + 1) * c2 * Ratio(spec.s - 1) +
                        c2;  // step-counting branch
    ok = ok && ex.complete && ex.all_solved &&
         ex.max_termination <= upper &&
         sampled.max_termination == ex.max_termination;
    table.add_row({"semisync s=2 n=2 c2/c1=4", factory.name(),
                   std::to_string(ex.runs), fmt(ex.max_termination),
                   fmt(sampled.max_termination), fmt(upper),
                   ex.all_solved ? "yes" : "NO",
                   sampled.max_termination == ex.max_termination ? "yes"
                                                                 : "no"});
  }

  // Semi-synchronous communication strategy, n=2 s=2, gaps {c1, c2},
  // delays {0, d2}.
  {
    const ProblemSpec spec{2, 2, 2};
    const Duration c1(1), c2(2), d2(6);
    const auto constraints = TimingConstraints::semi_synchronous(c1, c2, d2);
    SemiSyncMpmFactory factory(SemiSyncStrategy::kCommunicate);
    const ExhaustiveResult ex = explore_mpm(spec, constraints, factory,
                                            {c1, c2}, {Duration(0), d2});
    const WorstCase sampled = mpm_worst_case(spec, constraints, factory, 4);
    const Ratio upper = (d2 + c2) * Ratio(spec.s - 1) + c2;  // comm branch
    ok = ok && ex.complete && ex.all_solved && ex.max_termination <= upper &&
         sampled.max_termination <= ex.max_termination;
    table.add_row({"semisync s=2 n=2 d2=6", factory.name(),
                   std::to_string(ex.runs), fmt(ex.max_termination),
                   fmt(sampled.max_termination), fmt(upper),
                   ex.all_solved ? "yes" : "NO",
                   sampled.max_termination == ex.max_termination ? "yes"
                                                                 : "no"});
  }

  // A(sp), n=2 s=2, stalls on the step grid, delay pinned to d2.
  {
    const ProblemSpec spec{2, 2, 2};
    const Duration c1(1), d1(1), d2(3);
    const auto constraints = TimingConstraints::sporadic(c1, d1, d2);
    SporadicMpmFactory factory;
    const ExhaustiveResult ex = explore_mpm(spec, constraints, factory,
                                            {c1, c1 * 5}, {d2});
    const WorstCase sampled = mpm_worst_case(spec, constraints, factory, 4);
    ok = ok && ex.complete && ex.all_solved;
    const Ratio upper = bounds::sporadic_mp_upper(
        spec, c1, d1, d2, /*gamma=*/c1 * 5);
    ok = ok && ex.max_termination <= upper;
    table.add_row({"sporadic s=2 n=2 u=2", factory.name(),
                   std::to_string(ex.runs), fmt(ex.max_termination),
                   fmt(sampled.max_termination), fmt(upper),
                   ex.all_solved ? "yes" : "NO",
                   sampled.max_termination == ex.max_termination ? "yes"
                                                                 : "no"});
  }

  table.print(std::cout);
  std::cout << (ok ? "[OK] exhaustive enumeration confirms correctness and "
                     "bounds on every grid schedule\n"
                   : "[FAIL] exhaustive enumeration found a violation\n");
  return recorder.finish(ok);
}
