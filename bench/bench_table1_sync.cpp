// Reproduces Table 1, row "Sync." — L = U = s * c2 in both substrates.
// The synchronous schedule is unique (lockstep every c2, delays exactly d2),
// so the measured time must match the bound exactly in every cell.

#include <iostream>

#include "algorithms/mpm/sync_alg.hpp"
#include "algorithms/smm/sync_alg.hpp"
#include "analysis/bounds.hpp"
#include "analysis/report.hpp"
#include "obs/bench_record.hpp"
#include "sim/experiment.hpp"

using namespace sesp;

int main() {
  obs::BenchRecorder recorder("table1_sync");
  BoundReport report("Table 1 / synchronous: L = U = s*c2");

  for (const std::int64_t s : {1, 2, 4, 8, 16, 32}) {
    for (const std::int32_t n : {2, 8, 32}) {
      const ProblemSpec spec{s, n, 3};
      const Duration c2(3, 2);
      const Ratio bound = bounds::sync_tight(spec, c2);

      {
        SyncSmmFactory factory;
        const WorstCase wc = smm_worst_case(
            spec, TimingConstraints::synchronous(c2), factory);
        report.add_time_row("SM s=" + std::to_string(s) +
                                " n=" + std::to_string(n),
                            bound, wc, bound);
      }
      {
        SyncMpmFactory factory;
        const WorstCase wc = mpm_worst_case(
            spec, TimingConstraints::synchronous(c2, Duration(4)), factory);
        report.add_time_row("MP s=" + std::to_string(s) +
                                " n=" + std::to_string(n),
                            bound, wc, bound);
      }
    }
  }

  report.print(std::cout);
  report.append_rows(recorder);
  return recorder.finish(report.all_ok());
}
