// Derived experiments X-semisync / X-sporadic / X-periodic-vs: the paper's
// Section-1 comparative claims, measured.
//
//  1. Semi-synchronous crossover: as c2/c1 grows with communication cost
//     fixed, the optimal strategy flips from step counting to communication;
//     we print both strategies' measured worst cases and the auto pick.
//  2. Sporadic convergence: per-session measured cost approaches the
//     synchronous scale as d1 -> d2 and the asynchronous scale (~d2) as
//     d1 -> 0.
//  3. Periodic vs semi-synchronous (c_max = c2, 2c1 < c2, n constant):
//     periodic needs one communication total, semi-synchronous one per
//     session; periodic wins as s grows.

#include <iostream>
#include <string>
#include <vector>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

#include "obs/bench_record.hpp"

using namespace sesp;

int main() {
  obs::BenchRecorder recorder("crossover");
  bool ok = true;

  {
    std::cout << "== X-semisync: strategy crossover over c2/c1 (MP; d2=16, "
                 "s=6, n=4) ==\n";
    TextTable table({"c2/c1", "steps-strategy", "comm-strategy", "auto picks",
                     "auto time"});
    for (const std::int64_t ratio : {1, 2, 4, 8, 16, 32, 64}) {
      const ProblemSpec spec{6, 4, 2};
      const auto constraints = TimingConstraints::semi_synchronous(
          Duration(1), Duration(ratio), Duration(16));
      SemiSyncMpmFactory steps_f(SemiSyncStrategy::kStepCount);
      SemiSyncMpmFactory comm_f(SemiSyncStrategy::kCommunicate);
      SemiSyncMpmFactory auto_f(SemiSyncStrategy::kAuto);
      const WorstCase steps_wc =
          mpm_worst_case(spec, constraints, steps_f, 2);
      const WorstCase comm_wc = mpm_worst_case(spec, constraints, comm_f, 2);
      const WorstCase auto_wc = mpm_worst_case(spec, constraints, auto_f, 2);
      ok = ok && steps_wc.all_solved && comm_wc.all_solved &&
           auto_wc.all_solved;
      const bool auto_is_steps =
          SemiSyncMpmFactory::pick(constraints) == SemiSyncStrategy::kStepCount;
      // The auto pick must match whichever strategy measured cheaper (ties
      // go either way).
      const WorstCase& picked = auto_is_steps ? steps_wc : comm_wc;
      const WorstCase& other = auto_is_steps ? comm_wc : steps_wc;
      ok = ok && picked.max_termination <= other.max_termination;
      table.add_row({std::to_string(ratio), fmt(steps_wc.max_termination),
                     fmt(comm_wc.max_termination),
                     auto_is_steps ? "steps" : "comm",
                     fmt(auto_wc.max_termination)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "== X-sporadic: per-session cost as d1 sweeps d2 -> 0 "
                 "(c1=1, d2=32, s=8, n=4; fixed schedule: steps at c1, "
                 "delays d2) ==\n";
    TextTable table({"d1", "u", "L per session", "measured total",
                     "measured/(s-1)", "K"});
    Ratio prev_measured(0);
    bool monotone = true;
    // Sweep u upward (d1 from d2 down to 0): the per-session cost must grow
    // from the synchronous-like scale toward the asynchronous-like d2 scale.
    for (const std::int64_t d1v : {32, 28, 24, 16, 8, 0}) {
      const ProblemSpec spec{8, 4, 2};
      const Duration c1(1), d1(d1v), d2(32);
      const auto constraints = TimingConstraints::sporadic(c1, d1, d2);
      SporadicMpmFactory factory;
      FixedPeriodScheduler sched(spec.n, c1);
      FixedDelay delay{d2};
      const MpmOutcome out =
          run_mpm_once(spec, constraints, factory, sched, delay);
      ok = ok && out.verdict.solves;
      const Ratio measured = *out.verdict.termination_time;
      if (measured < prev_measured) monotone = false;
      prev_measured = measured;
      const Ratio per_session = measured / Ratio(spec.s - 1);
      table.add_row(
          {std::to_string(d1v), (d2 - d1).to_string(),
           (bounds::sporadic_mp_lower(spec, c1, d1, d2) / Ratio(spec.s - 1))
               .to_string(),
           fmt(measured), fmt_approx(per_session),
           bounds::sporadic_K(c1, d1, d2).to_string()});
    }
    ok = ok && monotone;
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "== X-periodic-vs: periodic (one communication) vs "
                 "semi-sync (one per session); c_max=c2=8, c1=1, d2=8, n=3 "
                 "==\n";
    TextTable table(
        {"s", "periodic", "semi-sync", "periodic wins", "expected"});
    for (const std::int64_t s : {2, 3, 4, 8, 16, 32}) {
      const ProblemSpec spec{s, 3, 2};
      const Duration c1(1), c2(8), d2(8);
      PeriodicMpmFactory per_f;
      const WorstCase per_wc = mpm_worst_case(
          spec,
          TimingConstraints::periodic(
              std::vector<Duration>(3, c2), d2),
          per_f);
      SemiSyncMpmFactory semi_f;
      const WorstCase semi_wc = mpm_worst_case(
          spec, TimingConstraints::semi_synchronous(c1, c2, d2), semi_f, 2);
      ok = ok && per_wc.all_solved && semi_wc.all_solved;
      const bool periodic_wins =
          per_wc.max_termination < semi_wc.max_termination;
      // The paper predicts periodic wins when c_max = c2, 2c1 < c2, n
      // constant relative to s — i.e. for every s here except the smallest,
      // where the one-off d2 still dominates.
      table.add_row({std::to_string(s), fmt(per_wc.max_termination),
                     fmt(semi_wc.max_termination), periodic_wins ? "yes" : "no",
                     s >= 3 ? "yes" : "-"});
      if (s >= 3) ok = ok && periodic_wins;
    }
    table.print(std::cout);
  }

  std::cout << (ok ? "[OK] all crossover claims hold\n"
                   : "[FAIL] a crossover claim failed\n");
  return recorder.finish(ok);
}
