// Reproduces Table 1, row "Async.":
//   SM ([2], measured in rounds): (s-1)*floor(log_b n) <= rounds <=
//     (s-1)*O(log_b n)  — the knowledge-round algorithm over the tree.
//   MP ([4], real time with c1 = d1 = 0, c2/d2 finite):
//     (s-1)*d2 <= t <= (s-1)*(d2+c2) + c2.

#include <iostream>
#include <string>

#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "analysis/bounds.hpp"
#include "analysis/report.hpp"
#include "obs/bench_record.hpp"
#include "sim/experiment.hpp"

using namespace sesp;

int main() {
  obs::BenchRecorder recorder("table1_async");
  bool ok = true;

  {
    BoundReport report(
        "Table 1 / async SM (rounds): (s-1)*log_b n <= rounds <= "
        "(s-1)*O(log_b n)");
    for (const std::int64_t s : {2, 4, 8}) {
      for (const std::int32_t n : {4, 16, 64}) {
        for (const std::int32_t b : {2, 4}) {
          const ProblemSpec spec{s, n, b};
          const auto constraints = TimingConstraints::asynchronous();
          AsyncSmmFactory factory;
          const WorstCase wc = smm_worst_case(spec, constraints, factory,
                                              /*random_runs=*/3);
          report.add_rounds_row(
              "SM s=" + std::to_string(s) + " n=" + std::to_string(n) +
                  " b=" + std::to_string(b),
              bounds::async_sm_lower_rounds(spec), wc,
              bounds::async_sm_upper_rounds(spec,
                                            smm_tree_latency_steps(n, b)));
        }
      }
    }
    report.print(std::cout);
    report.append_rows(recorder);
    ok = ok && report.all_ok();
    std::cout << '\n';
  }

  {
    BoundReport report(
        "Table 1 / async MP (time): (s-1)*d2 <= t <= (s-1)*(d2+c2) + c2");
    for (const std::int64_t s : {2, 4, 8}) {
      for (const std::int32_t n : {2, 8, 32}) {
        const ProblemSpec spec{s, n, 2};
        const Duration c2(2), d2(9);
        const auto constraints = TimingConstraints::asynchronous(c2, d2);
        AsyncMpmFactory factory;
        const WorstCase wc = mpm_worst_case(spec, constraints, factory,
                                            /*random_runs=*/3);
        report.add_time_row(
            "MP s=" + std::to_string(s) + " n=" + std::to_string(n),
            bounds::async_mp_lower(spec, d2), wc,
            bounds::async_mp_upper(spec, c2, d2));
      }
    }
    report.print(std::cout);
    report.append_rows(recorder);
    ok = ok && report.all_ok();
  }

  return recorder.finish(ok);
}
