// Regenerates the diameter factor of [4]'s point-to-point model — the
// paper's conversion note (1) before Table 1 says its abstract d2 "subsumes
// the diameter factor"; here we un-subsume it. The round-based algorithm
// (one knowledge round per session) runs over topologies of growing
// diameter with identical per-hop delay and step bounds; the measured
// per-session cost scales with the diameter:
//
//   time ~ (s-1) * D * (d_hop + c2)
//
// while on the complete graph (D = 1) it collapses to the abstract-model
// cost (s-1)*(d2+c2)+c2.

#include <iostream>
#include <string>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/p2p/knowledge_algs.hpp"
#include "p2p/p2p_simulator.hpp"
#include "session/session_counter.hpp"
#include "session/verifier.hpp"
#include "util/table.hpp"

#include "obs/bench_record.hpp"

using namespace sesp;

int main() {
  obs::BenchRecorder recorder("diameter");
  bool ok = true;
  const Duration c2(1), d_hop(4);
  std::cout << "== Diameter factor (p2p rounds algorithm; c2=1, per-hop "
               "delay=4, s=6) ==\n";
  TextTable table({"topology", "n", "diameter", "measured time",
                   "time/(s-1)", "per-session/diameter", "solved"});

  const std::int64_t s = 6;
  const std::int32_t n = 12;
  const Topology topologies[] = {
      Topology::complete(n), Topology::star(n),    Topology::tree(n, 2),
      Topology::grid(3, 4),  Topology::ring(n),    Topology::line(n),
  };

  for (const Topology& topo : topologies) {
    const ProblemSpec spec{s, n, 2};
    const auto constraints = TimingConstraints::asynchronous(c2, d_hop);
    P2pRoundsFactory factory;
    FixedPeriodScheduler sched(n, c2);
    FixedDelay delay(d_hop);
    P2pSimulator sim(spec, constraints, topo, factory, sched, delay);
    const P2pRunResult run = sim.run();
    const Verdict verdict = verify(run.trace, spec, constraints);
    ok = ok && run.completed && verdict.admissible && verdict.solves;

    const Ratio per_session =
        verdict.termination_time
            ? *verdict.termination_time / Ratio(s - 1)
            : Ratio(0);
    const Ratio per_hop = per_session / Ratio(topo.diameter());
    table.add_row({topo.name(), std::to_string(n),
                   std::to_string(topo.diameter()),
                   verdict.termination_time
                       ? verdict.termination_time->to_string()
                       : "-",
                   fmt_approx(per_session), fmt_approx(per_hop),
                   verdict.solves ? "yes" : "NO"});
  }
  table.print(std::cout);

  // Scaling along one family: rings of growing size (diameter n/2).
  std::cout << "\n== Ring scaling: per-session cost tracks the diameter ==\n";
  TextTable ring_table({"n", "diameter", "measured", "per-session",
                        "per-session/diameter"});
  Ratio prev_per_session(0);
  bool monotone = true;
  for (const std::int32_t ring_n : {4, 6, 8, 12, 16, 24}) {
    const ProblemSpec spec{4, ring_n, 2};
    const Topology topo = Topology::ring(ring_n);
    const auto constraints = TimingConstraints::asynchronous(c2, d_hop);
    P2pRoundsFactory factory;
    FixedPeriodScheduler sched(ring_n, c2);
    FixedDelay delay(d_hop);
    P2pSimulator sim(spec, constraints, topo, factory, sched, delay);
    const P2pRunResult run = sim.run();
    const Verdict verdict = verify(run.trace, spec, constraints);
    ok = ok && verdict.solves;
    const Ratio per_session = *verdict.termination_time / Ratio(3);
    if (per_session < prev_per_session) monotone = false;
    prev_per_session = per_session;
    ring_table.add_row({std::to_string(ring_n),
                        std::to_string(topo.diameter()),
                        verdict.termination_time->to_string(),
                        fmt_approx(per_session),
                        fmt_approx(per_session / Ratio(topo.diameter()))});
  }
  ring_table.print(std::cout);
  ok = ok && monotone;

  std::cout << (ok ? "[OK] diameter factor reproduced (cost grows with D, "
                     "collapses at D=1)\n"
                   : "[FAIL] diameter scaling broken\n");
  return recorder.finish(ok);
}
