// Reproduces Table 1, row "Sporadic" (Section 6, A(sp); MP only — the
// sporadic SMM equals the asynchronous SMM):
//   L = max{floor(u/4c1)*K, c1} * (s-1),   K = 2*d2*c1/(d2 - u/2)
//   U (Thm 6.1 exact) = min{(floor(u/c1)+1)g + u + 2g, d2+g}(s-2) + d2 + 2g
//
// The sweep moves d1 from d2 down to 0 (u = d2-d1 from 0 to d2): with u -> 0
// the per-session cost collapses toward c1 (synchronous-like); with u -> d2
// it grows toward d2 (asynchronous-like) — the paper's Section 1 narrative.

#include <iostream>
#include <string>

#include "algorithms/mpm/sporadic_alg.hpp"
#include "analysis/bounds.hpp"
#include "analysis/report.hpp"
#include "obs/bench_record.hpp"
#include "sim/experiment.hpp"

using namespace sesp;

int main() {
  obs::BenchRecorder recorder("table1_sporadic");
  BoundReport report(
      "Table 1 / sporadic MP: A(sp); gamma taken from each measured run");

  for (const std::int64_t s : {2, 4, 8}) {
    for (const std::int32_t n : {2, 4, 8}) {
      const Duration c1(1), d2(24);
      for (const std::int64_t d1v : {24, 20, 12, 4, 0}) {
        const ProblemSpec spec{s, n, 2};
        const Duration d1(d1v);
        const auto constraints = TimingConstraints::sporadic(c1, d1, d2);
        SporadicMpmFactory factory;
        const WorstCase wc = mpm_worst_case(spec, constraints, factory,
                                            /*random_runs=*/3);
        // The upper bound is per-computation via gamma; use the worst
        // observed gamma, which upper-bounds every run's own bound.
        const Ratio upper = bounds::sporadic_mp_upper(
            spec, c1, d1, d2,
            wc.max_gamma.is_zero() ? Duration(1) : wc.max_gamma);
        report.add_time_row(
            "s=" + std::to_string(s) + " n=" + std::to_string(n) +
                " u=" + (d2 - d1).to_string(),
            bounds::sporadic_mp_lower(spec, c1, d1, d2), wc, upper);
      }
    }
  }

  report.print(std::cout);
  std::cout << "K and the per-session scale:\n";
  for (const std::int64_t d1v : {24, 20, 12, 4, 0}) {
    const Duration c1(1), d1(d1v), d2(24);
    std::cout << "  u=" << (d2 - d1).to_string()
              << "  K=" << bounds::sporadic_K(c1, d1, d2).to_string()
              << "  L-per-session="
              << bounds::sporadic_mp_lower(ProblemSpec{2, 2, 2}, c1, d1, d2)
                     .to_string()
              << "\n";
  }
  report.append_rows(recorder);
  return recorder.finish(report.all_ok());
}
