// Serve-layer benchmark: sustained request throughput of an in-process
// sesp_serve core over real localhost sockets (docs/serving.md). Three
// workloads, each pipelined on its own connection:
//
//   * health — pure request-path overhead (parse + dispatch + reply write);
//   * bound  — Table-1 cells from the digest-keyed LRU (one miss, then all
//              hits; replies must stay byte-identical across the flood);
//   * run    — lockstep simulator runs through the heavy pool, plus one
//              degradation sweep through the exclusive executor.
//
// The ok-gate is the robustness contract, not a throughput number (CI boxes
// vary): every reply is Ok, bound replies are byte-identical, and the
// server drains cleanly. The measured health/bound/run QPS land in
// BENCH_serve.json as notes; steps_per_sec (the gated perf-trajectory
// figure) comes from the simulator work the run/sweep workloads push
// through the server, folded into the recorder when the server stops.
//
// SESP_BENCH_QUICK=1 shrinks the request counts for CI.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "obs/bench_record.hpp"
#include "serve/server.hpp"

using namespace sesp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Minimal blocking line-framed client (the bench-local twin of sesp_client).
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return fd_ >= 0; }

  bool send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t k =
          ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      if (k < 0 && errno == EINTR) continue;
      if (k <= 0) return false;
      off += static_cast<std::size_t>(k);
    }
    return true;
  }

  std::optional<std::string> read_line(std::int64_t timeout_ms = 60'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      pollfd p{fd_, POLLIN, 0};
      const int pr = ::poll(&p, 1, 100);
      if (pr < 0 && errno != EINTR) return std::nullopt;
      if (pr <= 0) continue;
      char chunk[8192];
      const ssize_t k = ::recv(fd_, chunk, sizeof chunk, 0);
      if (k == 0) return std::nullopt;
      if (k < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return std::nullopt;
      }
      buffer_.append(chunk, static_cast<std::size_t>(k));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

bool has_status_ok(const std::string& reply) {
  return reply.find("\"status\":\"Ok\"") != std::string::npos;
}

// Pipelines `count` copies of `request` (with a fresh id each) and returns
// QPS, or nullopt on any transport failure or non-Ok reply. When
// `identical` is set, every reply past the first must be byte-identical to
// the first after normalizing the id field — which the fixed id 1 makes a
// plain string compare.
std::optional<double> flood(Client& client, const std::string& request,
                            std::int64_t count, std::string* first_reply) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < count; ++i)
    if (!client.send_line(request)) return std::nullopt;
  for (std::int64_t i = 0; i < count; ++i) {
    const auto reply = client.read_line();
    if (!reply || !has_status_ok(*reply)) return std::nullopt;
    if (first_reply != nullptr) {
      if (first_reply->empty()) {
        *first_reply = *reply;
      } else if (*reply != *first_reply) {
        return std::nullopt;  // byte-identity violated
      }
    }
  }
  const double elapsed = seconds_since(t0);
  return elapsed > 0 ? static_cast<double>(count) / elapsed : 0.0;
}

// Submits one sweep and polls its ticket until done.
bool run_sweep(Client& client, std::uint64_t seed) {
  if (!client.send_line(
          R"({"id":1,"op":"sweep","substrate":"mpm","model":"semisync","seed":)" +
          std::to_string(seed) + "}"))
    return false;
  const auto submitted = client.read_line();
  if (!submitted || !has_status_ok(*submitted)) return false;
  const std::size_t at = submitted->find("\"ticket\":\"");
  if (at == std::string::npos) return false;
  const std::string ticket = submitted->substr(at + 10, 16);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  std::int64_t id = 2;
  while (std::chrono::steady_clock::now() < deadline) {
    if (!client.send_line("{\"id\":" + std::to_string(id++) +
                          ",\"op\":\"poll\",\"ticket\":\"" + ticket + "\"}"))
      return false;
    const auto reply = client.read_line();
    if (!reply || !has_status_ok(*reply)) return false;
    if (reply->find("\"state\":\"done\"") != std::string::npos) return true;
    if (reply->find("\"state\":\"interrupted\"") != std::string::npos)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

}  // namespace

int main() {
  obs::BenchRecorder recorder("serve");
  const bool quick = std::getenv("SESP_BENCH_QUICK") != nullptr;
  recorder.note("mode", std::string(quick ? "quick" : "full"));
  ::setenv("SESP_JOURNAL_FSYNC", "0", 0);  // benches measure compute, not disk

  const std::int64_t health_count = quick ? 2'000 : 20'000;
  const std::int64_t bound_count = quick ? 1'000 : 10'000;
  const std::int64_t run_count = quick ? 32 : 128;
  const int sweeps = quick ? 1 : 2;

  serve::ServerConfig config;
  // The bench floods from a handful of pipelined connections; per-connection
  // rate limiting would measure the limiter, not the server.
  config.admission.rate_per_sec = 1e9;
  config.admission.burst = 1e9;
  const std::filesystem::path journal_dir =
      std::filesystem::temp_directory_path() /
      ("sesp-bench-serve-" + std::to_string(::getpid()));
  std::filesystem::remove_all(journal_dir);
  config.journal_dir = journal_dir.string();

  serve::Server server(config);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "bench_serve: start failed: " << error << "\n";
    return recorder.finish(false);
  }

  bool ok = true;

  {
    Client client(server.port());
    ok = ok && client.connected();
    const auto qps =
        ok ? flood(client, R"({"id":1,"op":"health"})", health_count, nullptr)
           : std::nullopt;
    ok = ok && qps.has_value();
    recorder.note("health_requests", health_count);
    recorder.note("health_qps", qps.value_or(0.0));
    std::cout << "health: " << health_count << " requests, "
              << qps.value_or(0.0) << " qps\n";
  }

  {
    Client client(server.port());
    ok = ok && client.connected();
    std::string first;
    const auto qps =
        ok ? flood(client,
                   R"({"id":1,"op":"bound","model":"semisync","side":"mp"})",
                   bound_count, &first)
           : std::nullopt;
    ok = ok && qps.has_value();
    recorder.note("bound_requests", bound_count);
    recorder.note("bound_qps", qps.value_or(0.0));
    recorder.note("bound_byte_identical", std::string(qps ? "yes" : "NO"));
    std::cout << "bound: " << bound_count << " requests, " << qps.value_or(0.0)
              << " qps, byte-identical " << (qps ? "yes" : "NO") << "\n";
  }

  {
    Client client(server.port());
    ok = ok && client.connected();
    const auto t0 = std::chrono::steady_clock::now();
    // Distinct seeds defeat coalescing: every request is a real run.
    if (ok) {
      for (std::int64_t i = 0; i < run_count; ++i)
        ok = ok &&
             client.send_line(
                 R"({"id":1,"op":"run","adversary":"lockstep","seed":)" +
                 std::to_string(10'000 + i) + "}");
      for (std::int64_t i = 0; ok && i < run_count; ++i) {
        const auto reply = client.read_line();
        ok = ok && reply && has_status_ok(*reply);
      }
    }
    for (int i = 0; ok && i < sweeps; ++i)
      ok = ok && run_sweep(client, 1992 + static_cast<std::uint64_t>(i));
    const double elapsed = seconds_since(t0);
    recorder.note("run_requests", run_count);
    recorder.note("sweeps", static_cast<std::int64_t>(sweeps));
    recorder.note("run_seconds", elapsed);
    recorder.note("run_qps",
                  elapsed > 0 ? static_cast<double>(run_count) / elapsed : 0.0);
    std::cout << "run: " << run_count << " runs + " << sweeps << " sweeps in "
              << elapsed << "s\n";
  }

  // stop() folds the server-private metrics (sim.steps from every run and
  // sweep) and the serve.* counters into the recorder's registry.
  server.request_drain();
  server.stop();
  ok = ok && !server.interrupted();
  const auto& counters = server.counters();
  ok = ok && counters.bad_request.load() == 0 &&
       counters.overloaded.load() == 0 && counters.timeout.load() == 0 &&
       counters.connections_dropped.load() == 0;
  recorder.note("cache_hits", server.cache_stats().hits);
  std::filesystem::remove_all(journal_dir);

  std::cout << (ok ? "SERVE CONTRACT HOLDS" : "SERVE CONTRACT VIOLATED")
            << "\n";
  return recorder.finish(ok);
}
