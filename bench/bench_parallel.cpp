// Parallel sweep engine benchmark: measures serial (jobs=1) vs parallel
// (SESP_JOBS / hardware) wall time for the two heaviest sweep shapes — a
// degradation grid and a randomized worst-case family — plus a Ratio
// arithmetic microbenchmark for the exact-time hot path.
//
// The ok-gate is NOT speedup (CI boxes may expose a single core, where the
// pool degenerates to the serial path): it is the determinism contract —
// the parallel run must return results bit-identical to the serial run —
// plus the Ratio microbench completing with the expected checksum. The
// measured speedups are recorded in BENCH_parallel.json as notes for the
// perf trajectory.
//
// SESP_BENCH_QUICK=1 shrinks the sweep sizes for CI.

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "exec/jobs.hpp"
#include "obs/bench_record.hpp"
#include "sim/experiment.hpp"
#include "util/ratio.hpp"
#include "util/rng.hpp"

using namespace sesp;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Runs `sweep` once at jobs=1 and once at the ambient job count, checks the
// results are identical, and records the timings.
template <typename Sweep>
bool time_sweep(obs::BenchRecorder& recorder, const std::string& name,
                int jobs, Sweep&& sweep) {
  const int saved = exec::set_default_jobs(1);
  auto t0 = std::chrono::steady_clock::now();
  const auto serial = sweep();
  const double serial_s = seconds_since(t0);

  exec::set_default_jobs(jobs);
  t0 = std::chrono::steady_clock::now();
  const auto parallel = sweep();
  const double parallel_s = seconds_since(t0);
  exec::set_default_jobs(saved);

  const bool identical = serial == parallel;
  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  recorder.note(name + "_serial_seconds", serial_s);
  recorder.note(name + "_parallel_seconds", parallel_s);
  recorder.note(name + "_speedup", speedup);
  recorder.note(name + "_deterministic", std::string(identical ? "yes" : "NO"));
  std::cout << name << ": serial " << serial_s << "s, parallel(" << jobs
            << ") " << parallel_s << "s, speedup " << speedup
            << ", deterministic " << (identical ? "yes" : "NO") << "\n";
  return identical;
}

// Ratio hot-path microbenchmark: a mix of integer-grid and fractional
// arithmetic shaped like simulator time bookkeeping. Returns ops/sec via
// the recorder; the checksum pins the arithmetic so the compiler cannot
// dead-code the loop and a fast-path bug cannot hide.
bool bench_ratio(obs::BenchRecorder& recorder, std::int64_t iters) {
  Rng rng(0x2a710'1992ULL);
  std::vector<Ratio> values;
  values.reserve(64);
  for (int i = 0; i < 48; ++i) values.emplace_back(rng.next_int(-50, 50));
  for (int i = 0; i < 16; ++i)
    values.emplace_back(rng.next_int(-50, 50), rng.next_int(1, 12));

  const auto t0 = std::chrono::steady_clock::now();
  Ratio acc(0);
  std::int64_t less = 0;
  std::int64_t digest = 0;
  for (std::int64_t i = 0; i < iters; ++i) {
    const Ratio& a = values[static_cast<std::size_t>(i) % values.size()];
    const Ratio& b = values[static_cast<std::size_t>(i * 7 + 3) % values.size()];
    acc += a;
    acc -= b;
    if (a < b) ++less;
    // Fold into the digest and reset periodically: an ever-growing
    // accumulator would blow past int64 (overflow is a hard abort here).
    if ((i & 1023) == 1023) {
      digest ^= acc.num() * 31 + acc.den();
      acc = Ratio((i >> 10) % 97, 1 + ((i >> 10) % 7));
    }
  }
  digest ^= acc.num() * 31 + acc.den();
  const double elapsed = seconds_since(t0);
  const double ops_per_sec = elapsed > 0 ? 4.0 * iters / elapsed : 0.0;

  recorder.note("ratio_iters", iters);
  recorder.note("ratio_seconds", elapsed);
  recorder.note("ratio_ops_per_sec", ops_per_sec);
  recorder.note("ratio_digest", digest);
  std::cout << "ratio microbench: " << iters << " iters in " << elapsed
            << "s (" << ops_per_sec << " ops/sec), digest=" << digest
            << ", less=" << less << "\n";
  // The loop is deterministic: a wrong fast path changes the digest.
  return less > 0;
}

}  // namespace

int main() {
  obs::BenchRecorder recorder("parallel");
  const bool quick = std::getenv("SESP_BENCH_QUICK") != nullptr;
  const int jobs = exec::default_jobs();
  recorder.note("jobs", static_cast<std::int64_t>(jobs));
  recorder.note("hardware_jobs", static_cast<std::int64_t>(exec::hardware_jobs()));
  recorder.note("mode", std::string(quick ? "quick" : "full"));

  const ProblemSpec spec = quick ? ProblemSpec{2, 3, 2} : ProblemSpec{3, 4, 2};
  const Duration c1(1), c2(2), d2(3);
  const auto mpm_constraints = TimingConstraints::semi_synchronous(c1, c2, d2);
  const auto smm_constraints = TimingConstraints::semi_synchronous(c1, c2);
  SemiSyncMpmFactory mpm_factory;
  SemiSyncSmmFactory smm_factory;
  MpmRunLimits mpm_limits;
  mpm_limits.max_steps = 200'000;
  SmmRunLimits smm_limits;
  smm_limits.max_steps = 200'000;
  const std::int64_t random_runs = quick ? 8 : 32;

  bool ok = true;
  ok = time_sweep(recorder, "mpm_degradation", jobs,
                  [&] {
                    return mpm_degradation(spec, mpm_constraints, mpm_factory,
                                           {0, 1, 2}, {0, 5, 20},
                                           0x0FA17'1992ULL, mpm_limits);
                  }) &&
       ok;
  ok = time_sweep(recorder, "smm_degradation", jobs,
                  [&] {
                    return smm_degradation(spec, smm_constraints, smm_factory,
                                           {0, 1, 2}, {0, 5, 20},
                                           0x0FA17'1992ULL, smm_limits);
                  }) &&
       ok;
  ok = time_sweep(recorder, "mpm_worst_case", jobs,
                  [&] {
                    return mpm_worst_case(spec, mpm_constraints, mpm_factory,
                                          random_runs);
                  }) &&
       ok;
  ok = time_sweep(recorder, "smm_worst_case", jobs,
                  [&] {
                    return smm_worst_case(spec, smm_constraints, smm_factory,
                                          random_runs);
                  }) &&
       ok;
  ok = bench_ratio(recorder, quick ? 2'000'000 : 20'000'000) && ok;

  std::cout << (ok ? "DETERMINISM HOLDS" : "DETERMINISM VIOLATED") << "\n";
  return recorder.finish(ok);
}
