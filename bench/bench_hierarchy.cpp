// Derived experiment H-hierarchy: the paper's Section-1 claim that the
// timing models form a hierarchy for the session problem. One workload
// (same s, n, b, same base step scale), every model's best algorithm, the
// measured worst-case time over each model's adversary family:
//
//   synchronous <= periodic <= semi-synchronous <= asynchronous    (MP)
//
// plus the periodic-vs-sporadic comparison the paper calls out (periodic
// wins when c_max < floor(u/4c1)*K).

#include <iostream>
#include <string>
#include <vector>

#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "analysis/report.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

#include "obs/bench_record.hpp"

using namespace sesp;

int main() {
  obs::BenchRecorder recorder("hierarchy");
  bool ok = true;
  std::cout << "== Hierarchy of timing models (MP), same workload ==\n";
  TextTable table({"s", "n", "sync", "periodic", "semi-sync", "sporadic",
                   "async", "sync<=per<=semi<=async"});

  for (const std::int64_t s : {2, 4, 8, 16}) {
    for (const std::int32_t n : {2, 4, 8}) {
      const ProblemSpec spec{s, n, 2};
      // Common scale: unit step lower bound, c2 = 4, d2 = 8.
      const Duration c1(1), c2(4), d1(2), d2(8);

      SyncMpmFactory sync_f;
      const WorstCase sync_wc =
          mpm_worst_case(spec, TimingConstraints::synchronous(c2, d2), sync_f);

      PeriodicMpmFactory per_f;
      const WorstCase per_wc = mpm_worst_case(
          spec,
          TimingConstraints::periodic(
              std::vector<Duration>(static_cast<std::size_t>(n), c2), d2),
          per_f);

      SemiSyncMpmFactory semi_f;
      const WorstCase semi_wc = mpm_worst_case(
          spec, TimingConstraints::semi_synchronous(c1, c2, d2), semi_f,
          /*random_runs=*/3);

      SporadicMpmFactory spor_f;
      const WorstCase spor_wc = mpm_worst_case(
          spec, TimingConstraints::sporadic(c1, d1, d2), spor_f,
          /*random_runs=*/3);

      AsyncMpmFactory async_f;
      const WorstCase async_wc = mpm_worst_case(
          spec, TimingConstraints::asynchronous(c2, d2), async_f,
          /*random_runs=*/3);

      ok = ok && sync_wc.all_solved && per_wc.all_solved &&
           semi_wc.all_solved && spor_wc.all_solved && async_wc.all_solved;

      const bool ordered = sync_wc.max_termination <= per_wc.max_termination &&
                           per_wc.max_termination <= semi_wc.max_termination &&
                           semi_wc.max_termination <= async_wc.max_termination;
      ok = ok && ordered;
      table.add_row({std::to_string(s), std::to_string(n),
                     fmt(sync_wc.max_termination),
                     fmt(per_wc.max_termination),
                     fmt(semi_wc.max_termination),
                     fmt(spor_wc.max_termination),
                     fmt(async_wc.max_termination), ordered ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << (ok ? "[OK] hierarchy holds on every workload\n"
                   : "[FAIL] hierarchy violated\n");
  return recorder.finish(ok);
}
