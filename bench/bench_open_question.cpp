// The paper's open question (end of Section 1): "the relationship between
// the sporadic and the semi-synchronous systems for message passing is
// rather unclear and understanding it requires further study."
//
// This bench explores it empirically. Both models share c1 and d2; the
// semi-synchronous model additionally bounds step time by c2, the sporadic
// model additionally bounds delay from below by d1. We fix c1 = 1 and
// sweep the two "extra knowledge" axes:
//
//   rows:    c2/c1 (how tight the semi-synchronous step bound is)
//   columns: d1/d2 (how tight the sporadic delay window is)
//
// and report which model's algorithm terminates faster on its own
// worst-case family. The emerging picture: semi-synchrony wins when steps
// are predictable (small c2/c1), sporadicity wins when delays are
// predictable (d1 close to d2) — the two kinds of timing knowledge are
// incomparable, explaining why the paper found no clean ordering.

#include <iostream>
#include <string>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

#include "obs/bench_record.hpp"

using namespace sesp;

namespace {

// Both models are run under the *same* timed schedule — every step gap
// exactly c1 (admissible in both: >= c1 and <= c2), every delay exactly d2
// (within [0, d2] and [d1, d2]) — so the comparison isolates what each
// model's algorithm can infer, not what its adversary family differs in.
Ratio measure(const ProblemSpec& spec, const TimingConstraints& constraints,
              const MpmAlgorithmFactory& factory, bool* ok) {
  FixedPeriodScheduler sched(spec.n, constraints.c1.is_positive()
                                          ? constraints.c1
                                          : Duration(1));
  FixedDelay delay{constraints.d2};
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  *ok = *ok && out.verdict.solves && out.verdict.admissible;
  return out.verdict.termination_time ? *out.verdict.termination_time
                                      : Ratio(0);
}

}  // namespace

int main() {
  obs::BenchRecorder recorder("open_question");
  bool ok = true;
  const ProblemSpec spec{6, 4, 2};
  const Duration c1(1), d2(24);

  std::cout << "== Open question: sporadic vs semi-synchronous (MP) ==\n"
            << "workload s=" << spec.s << " n=" << spec.n
            << ", c1=1, d2=24, same schedule (steps at c1, delays d2);\n"
            << "cells show semi-sync time / sporadic time\n\n";

  TextTable table({"c2/c1 \\ d1", "d1=0", "d1=12", "d1=20", "d1=23",
                   "d1=24 (u=0)"});

  bool semisync_wins_somewhere = false;
  bool sporadic_wins_somewhere = false;

  for (const std::int64_t ratio : {2, 4, 16, 64}) {
    std::vector<std::string> row{"c2=" + std::to_string(ratio)};
    const auto semi_constraints =
        TimingConstraints::semi_synchronous(c1, Duration(ratio), d2);
    SemiSyncMpmFactory semi_factory;
    const Ratio semi = measure(spec, semi_constraints, semi_factory, &ok);

    for (const std::int64_t d1v : {0, 12, 20, 23, 24}) {
      const auto spor_constraints =
          TimingConstraints::sporadic(c1, Duration(d1v), d2);
      SporadicMpmFactory spor_factory;
      const Ratio spor = measure(spec, spor_constraints, spor_factory, &ok);
      const bool semi_faster = semi < spor;
      semisync_wins_somewhere = semisync_wins_somewhere || semi_faster;
      sporadic_wins_somewhere = sporadic_wins_somewhere || spor < semi;
      row.push_back(semi.to_string() + " / " + spor.to_string() +
                    (semi_faster ? "  [semi]" : "  [spor]"));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  // The paper's "unclear relationship" = neither model dominates; both
  // must win somewhere in the grid.
  ok = ok && semisync_wins_somewhere && sporadic_wins_somewhere;
  std::cout << "\nsemi-sync wins somewhere: "
            << (semisync_wins_somewhere ? "yes" : "no")
            << "\nsporadic  wins somewhere: "
            << (sporadic_wins_somewhere ? "yes" : "no") << "\n"
            << (ok ? "[OK] the models are empirically incomparable — "
                     "matching the paper's open question\n"
                   : "[FAIL] unexpected dominance or an unsolved instance\n");
  return recorder.finish(ok);
}
