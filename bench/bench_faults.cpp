// Graceful-degradation report for the Table 1 algorithms: every (timing
// model, substrate) pair is swept over a crash x loss/corruption grid
// (k in {0,1,2} crash-stops, p in {0,5,20}% message loss for MP / shared
// variable write corruption for SM) under the model's canonical
// deterministic adversary. The robustness contract under test: the
// fault-free cell solves, every faulty cell is classified (solved /
// degraded / diagnosed), and nothing ever aborts. Exit status 0 iff the
// contract holds for every grid.

#include <iostream>
#include <string>
#include <vector>

#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "algorithms/smm/sync_alg.hpp"
#include "sim/experiment.hpp"

#include "obs/bench_record.hpp"

using namespace sesp;

namespace {

// The contract every grid must satisfy. The baseline (first) cell is the
// fault-free run and must solve outright; all cells must carry a diagnostic.
bool check(const DegradationReport& report) {
  bool ok = !report.cells.empty() &&
            report.cells.front().outcome == RunOutcome::kSolved;
  for (const DegradationCell& cell : report.cells) {
    ok = ok && !cell.diagnostic.empty();
    if (cell.crashes > 0 && cell.outcome == RunOutcome::kSolved) ok = false;
  }
  std::cout << report.to_string() << "  contract: "
            << (ok ? "ok" : "VIOLATED") << "  (solved/degraded/diagnosed "
            << report.count(RunOutcome::kSolved) << "/"
            << report.count(RunOutcome::kDegraded) << "/"
            << report.count(RunOutcome::kDiagnosed) << ")\n\n";
  return ok;
}

std::vector<Duration> spread_periods(std::int32_t total, Duration c1,
                                     Duration c2) {
  std::vector<Duration> periods;
  for (std::int32_t i = 0; i < total; ++i) {
    const Ratio frac =
        total > 1 ? Ratio(i, std::max(total - 1, 1)) : Ratio(0);
    periods.push_back(c1 + (c2 - c1) * frac);
  }
  return periods;
}

}  // namespace

int main() {
  obs::BenchRecorder recorder("faults");
  bool ok = true;
  const ProblemSpec spec{3, 4, 2};
  const Duration c1(1), c2(2), d1(0), d2(4);
  MpmRunLimits mpm_limits;
  mpm_limits.max_steps = 100'000;  // injected livelocks are cut fast
  SmmRunLimits smm_limits;
  smm_limits.max_steps = 100'000;

  std::cout << "=== MP substrate: crashes x message loss ===\n\n";
  {
    SyncMpmFactory f;
    ok = check(mpm_degradation(spec, TimingConstraints::synchronous(c2, d2),
                               f, {0, 1, 2}, {0, 5, 20}, 0x0FA17'1992ULL,
                               mpm_limits)) &&
         ok;
  }
  {
    PeriodicMpmFactory f;
    ok = check(mpm_degradation(
             spec,
             TimingConstraints::periodic(spread_periods(spec.n, c1, c2), d2),
             f, {0, 1, 2}, {0, 5, 20}, 0x0FA17'1992ULL, mpm_limits)) &&
         ok;
  }
  {
    SemiSyncMpmFactory f;
    ok = check(mpm_degradation(
             spec, TimingConstraints::semi_synchronous(c1, c2, d2), f,
             {0, 1, 2}, {0, 5, 20}, 0x0FA17'1992ULL, mpm_limits)) &&
         ok;
  }
  {
    SporadicMpmFactory f;
    ok = check(mpm_degradation(spec, TimingConstraints::sporadic(c1, d1, d2),
                               f, {0, 1, 2}, {0, 5, 20}, 0x0FA17'1992ULL,
                               mpm_limits)) &&
         ok;
  }
  {
    AsyncMpmFactory f;
    ok = check(mpm_degradation(spec, TimingConstraints::asynchronous(c2, d2),
                               f, {0, 1, 2}, {0, 5, 20}, 0x0FA17'1992ULL,
                               mpm_limits)) &&
         ok;
  }

  std::cout << "=== SM substrate: crashes x write corruption ===\n\n";
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  {
    SyncSmmFactory f;
    ok = check(smm_degradation(spec, TimingConstraints::synchronous(c2), f,
                               {0, 1, 2}, {0, 5, 20}, 0x0FA17'1992ULL,
                               smm_limits)) &&
         ok;
  }
  {
    PeriodicSmmFactory f;
    ok = check(smm_degradation(
             spec, TimingConstraints::periodic(spread_periods(total, c1, c2)),
             f, {0, 1, 2}, {0, 5, 20}, 0x0FA17'1992ULL, smm_limits)) &&
         ok;
  }
  {
    SemiSyncSmmFactory f;
    ok = check(smm_degradation(spec,
                               TimingConstraints::semi_synchronous(c1, c2), f,
                               {0, 1, 2}, {0, 5, 20}, 0x0FA17'1992ULL,
                               smm_limits)) &&
         ok;
  }
  {
    AsyncSmmFactory f;
    ok = check(smm_degradation(spec, TimingConstraints::asynchronous(), f,
                               {0, 1, 2}, {0, 5, 20}, 0x0FA17'1992ULL,
                               smm_limits)) &&
         ok;
  }

  std::cout << (ok ? "ALL CONTRACTS HOLD" : "CONTRACT VIOLATIONS") << "\n";
  return recorder.finish(ok);
}
