// Microbenchmarks of the substrates (google-benchmark): simulator event
// throughput, session counting, tree gossip, and exact-rational arithmetic.
// These are the P-substrate entries of DESIGN.md — performance, not bound
// reproduction.

#include <benchmark/benchmark.h>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "adversary/semisync_retimer.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "analysis/causality.hpp"
#include "model/trace_io.hpp"
#include "session/session_counter.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace sesp {
namespace {

void BM_RatioArithmetic(benchmark::State& state) {
  Rng rng(7);
  std::vector<Ratio> values;
  for (int i = 0; i < 256; ++i)
    values.push_back(Ratio(rng.next_int(-1000, 1000),
                           rng.next_int(1, 1000)));
  std::size_t i = 0;
  for (auto _ : state) {
    const Ratio r = values[i % 256] * values[(i + 1) % 256] +
                    values[(i + 2) % 256];
    benchmark::DoNotOptimize(r);
    ++i;
  }
}
BENCHMARK(BM_RatioArithmetic);

void BM_SessionCounting(benchmark::State& state) {
  const auto n_ports = static_cast<std::int32_t>(state.range(0));
  Rng rng(11);
  std::vector<StepRecord> steps;
  for (int i = 0; i < 100'000; ++i) {
    StepRecord st;
    st.kind = StepKind::kCompute;
    st.port = static_cast<PortIndex>(
        rng.next_below(static_cast<std::uint64_t>(n_ports)));
    st.process = st.port;
    st.time = Time(i);
    steps.push_back(st);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_sessions_in(steps, n_ports));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_SessionCounting)->Arg(4)->Arg(32)->Arg(256);

void BM_MpmSimulator(benchmark::State& state) {
  const auto s = static_cast<std::int64_t>(state.range(0));
  const ProblemSpec spec{s, 4, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;
  std::int64_t steps = 0;
  for (auto _ : state) {
    FixedPeriodScheduler sched(spec.n, Duration(1));
    FixedDelay delay(Duration(5));
    MpmSimulator sim(spec, constraints, factory, sched, delay);
    const MpmRunResult run = sim.run();
    steps += run.compute_steps;
    benchmark::DoNotOptimize(run.trace.steps().size());
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_MpmSimulator)->Arg(4)->Arg(16)->Arg(64);

void BM_SmmSimulatorTreeGossip(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const ProblemSpec spec{4, n, 3};
  const auto constraints = TimingConstraints::asynchronous();
  AsyncSmmFactory factory;
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  std::int64_t steps = 0;
  for (auto _ : state) {
    FixedPeriodScheduler sched(total, Duration(1));
    SmmSimulator sim(spec, constraints, factory, sched);
    const SmmRunResult run = sim.run();
    steps += run.compute_steps;
    benchmark::DoNotOptimize(run.trace.steps().size());
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_SmmSimulatorTreeGossip)->Arg(4)->Arg(16)->Arg(64);

void BM_CausalOrderBuild(benchmark::State& state) {
  const ProblemSpec spec{8, 4, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay{Duration(5)};
  MpmSimulator sim(spec, constraints, factory, sched, delay);
  const MpmRunResult run = sim.run();
  for (auto _ : state) {
    const CausalOrder order(run.trace);
    benchmark::DoNotOptimize(order.depths().back());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(run.trace.steps().size()));
}
BENCHMARK(BM_CausalOrderBuild);

void BM_TraceRoundTrip(benchmark::State& state) {
  const ProblemSpec spec{6, 4, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay{Duration(5)};
  MpmSimulator sim(spec, constraints, factory, sched, delay);
  const MpmRunResult run = sim.run();
  for (auto _ : state) {
    const std::string text = to_text(run.trace);
    std::string error;
    const auto parsed = trace_from_text(text, &error);
    benchmark::DoNotOptimize(parsed->steps().size());
  }
}
BENCHMARK(BM_TraceRoundTrip);

void BM_SemiSyncRetimer(benchmark::State& state) {
  const ProblemSpec spec{4, 8, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(12));
  TooFewStepsSmmFactory broken(2);
  for (auto _ : state) {
    const SemiSyncRetimingResult result =
        attack_semisync_smm(spec, constraints, broken);
    benchmark::DoNotOptimize(result.certificate);
  }
}
BENCHMARK(BM_SemiSyncRetimer);

}  // namespace
}  // namespace sesp

BENCHMARK_MAIN();
