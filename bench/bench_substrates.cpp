// Microbenchmarks of the substrates (google-benchmark): simulator event
// throughput, session counting, tree gossip, and exact-rational arithmetic.
// These are the P-substrate entries of DESIGN.md — performance, not bound
// reproduction.
//
// Benchmarks are registered dynamically so `--quick` (or SESP_BENCH_QUICK=1)
// can shrink the s/n sweeps; CI runs the quick sweep through the same
// uniform bench loop as every other bench. The binary also measures the
// observer hot-path overhead directly (zero-observer vs metrics-observer
// steps/sec) and records both figures in BENCH_substrates.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "adversary/semisync_retimer.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "analysis/causality.hpp"
#include "model/trace_io.hpp"
#include "obs/bench_record.hpp"
#include "session/session_counter.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace sesp {
namespace {

void BM_RatioArithmetic(benchmark::State& state) {
  Rng rng(7);
  std::vector<Ratio> values;
  for (int i = 0; i < 256; ++i)
    values.push_back(Ratio(rng.next_int(-1000, 1000),
                           rng.next_int(1, 1000)));
  std::size_t i = 0;
  for (auto _ : state) {
    const Ratio r = values[i % 256] * values[(i + 1) % 256] +
                    values[(i + 2) % 256];
    benchmark::DoNotOptimize(r);
    ++i;
  }
}

// Same mix restricted to integers (den == 1) — the shape simulator time
// bookkeeping has almost always, served by the inline fast paths.
void BM_RatioIntegerArithmetic(benchmark::State& state) {
  Rng rng(7);
  std::vector<Ratio> values;
  for (int i = 0; i < 256; ++i)
    values.push_back(Ratio(rng.next_int(-1000, 1000)));
  std::size_t i = 0;
  for (auto _ : state) {
    const Ratio r = values[i % 256] * values[(i + 1) % 256] +
                    values[(i + 2) % 256];
    benchmark::DoNotOptimize(r);
    ++i;
  }
}

void BM_SessionCounting(benchmark::State& state) {
  const auto n_ports = static_cast<std::int32_t>(state.range(0));
  const auto trace_len = static_cast<int>(state.range(1));
  Rng rng(11);
  std::vector<StepRecord> steps;
  for (int i = 0; i < trace_len; ++i) {
    StepRecord st;
    st.kind = StepKind::kCompute;
    st.port = static_cast<PortIndex>(
        rng.next_below(static_cast<std::uint64_t>(n_ports)));
    st.process = st.port;
    st.time = Time(i);
    steps.push_back(st);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_sessions_in(steps, n_ports));
  }
  state.SetItemsProcessed(state.iterations() * trace_len);
}

void BM_MpmSimulator(benchmark::State& state) {
  const auto s = static_cast<std::int64_t>(state.range(0));
  const ProblemSpec spec{s, 4, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;
  std::int64_t steps = 0;
  for (auto _ : state) {
    FixedPeriodScheduler sched(spec.n, Duration(1));
    FixedDelay delay(Duration(5));
    MpmSimulator sim(spec, constraints, factory, sched, delay);
    const MpmRunResult run = sim.run();
    steps += run.compute_steps;
    benchmark::DoNotOptimize(run.trace.steps().size());
  }
  state.SetItemsProcessed(steps);
}

void BM_SmmSimulatorTreeGossip(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const ProblemSpec spec{4, n, 3};
  const auto constraints = TimingConstraints::asynchronous();
  AsyncSmmFactory factory;
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  std::int64_t steps = 0;
  for (auto _ : state) {
    FixedPeriodScheduler sched(total, Duration(1));
    SmmSimulator sim(spec, constraints, factory, sched);
    const SmmRunResult run = sim.run();
    steps += run.compute_steps;
    benchmark::DoNotOptimize(run.trace.steps().size());
  }
  state.SetItemsProcessed(steps);
}

void BM_CausalOrderBuild(benchmark::State& state) {
  const ProblemSpec spec{8, 4, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay{Duration(5)};
  MpmSimulator sim(spec, constraints, factory, sched, delay);
  const MpmRunResult run = sim.run();
  for (auto _ : state) {
    const CausalOrder order(run.trace);
    benchmark::DoNotOptimize(order.depths().back());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(run.trace.steps().size()));
}

void BM_TraceRoundTrip(benchmark::State& state) {
  const ProblemSpec spec{6, 4, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay{Duration(5)};
  MpmSimulator sim(spec, constraints, factory, sched, delay);
  const MpmRunResult run = sim.run();
  for (auto _ : state) {
    const std::string text = to_text(run.trace);
    std::string error;
    const auto parsed = trace_from_text(text, &error);
    benchmark::DoNotOptimize(parsed->steps().size());
  }
}

void BM_SemiSyncRetimer(benchmark::State& state) {
  const ProblemSpec spec{4, 8, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(12));
  TooFewStepsSmmFactory broken(2);
  for (auto _ : state) {
    const SemiSyncRetimingResult result =
        attack_semisync_smm(spec, constraints, broken);
    benchmark::DoNotOptimize(result.certificate);
  }
}

void register_benchmarks(bool quick) {
  const std::vector<std::int64_t> counting_ports =
      quick ? std::vector<std::int64_t>{4, 32}
            : std::vector<std::int64_t>{4, 32, 256};
  const std::int64_t trace_len = quick ? 10'000 : 100'000;
  const std::vector<std::int64_t> mpm_s =
      quick ? std::vector<std::int64_t>{4, 16}
            : std::vector<std::int64_t>{4, 16, 64};
  const std::vector<std::int64_t> smm_n =
      quick ? std::vector<std::int64_t>{4, 16}
            : std::vector<std::int64_t>{4, 16, 64};

  benchmark::RegisterBenchmark("BM_RatioArithmetic", BM_RatioArithmetic);
  benchmark::RegisterBenchmark("BM_RatioIntegerArithmetic",
                               BM_RatioIntegerArithmetic);
  for (const std::int64_t p : counting_ports)
    benchmark::RegisterBenchmark("BM_SessionCounting", BM_SessionCounting)
        ->Args({p, trace_len});
  for (const std::int64_t s : mpm_s)
    benchmark::RegisterBenchmark("BM_MpmSimulator", BM_MpmSimulator)->Arg(s);
  for (const std::int64_t n : smm_n)
    benchmark::RegisterBenchmark("BM_SmmSimulatorTreeGossip",
                                 BM_SmmSimulatorTreeGossip)
        ->Arg(n);
  benchmark::RegisterBenchmark("BM_CausalOrderBuild", BM_CausalOrderBuild);
  benchmark::RegisterBenchmark("BM_TraceRoundTrip", BM_TraceRoundTrip);
  if (!quick)
    benchmark::RegisterBenchmark("BM_SemiSyncRetimer", BM_SemiSyncRetimer);
}

// Direct hot-path overhead measurement outside google-benchmark: the same
// MPM workload with (a) no observer anywhere (the pre-observability hot
// path: every hook one null check) and (b) a metrics observer installed.
// Both steps/sec figures land in the bench record, making the
// "zero-observer run shows no measurable slowdown" claim checkable from
// BENCH_substrates.json alone.
void measure_observer_overhead(obs::BenchRecorder& recorder, bool quick) {
  const ProblemSpec spec{16, 4, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;
  const int reps = quick ? 40 : 200;

  const auto run_workload = [&]() -> std::int64_t {
    std::int64_t steps = 0;
    for (int i = 0; i < reps; ++i) {
      FixedPeriodScheduler sched(spec.n, Duration(1));
      FixedDelay delay(Duration(5));
      MpmSimulator sim(spec, constraints, factory, sched, delay);
      steps += sim.run().compute_steps;
    }
    return steps;
  };
  const auto timed = [&](std::int64_t* steps_out) -> double {
    const auto t0 = std::chrono::steady_clock::now();
    *steps_out = run_workload();
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  // (a) genuinely unobserved: detach the recorder's default observer.
  obs::Observer* const previous = obs::set_default_observer(nullptr);
  std::int64_t steps_noobs = 0;
  run_workload();  // warm-up
  const double secs_noobs = timed(&steps_noobs);
  obs::set_default_observer(previous);

  // (b) observed through the recorder's metrics registry.
  std::int64_t steps_obs = 0;
  const double secs_obs = timed(&steps_obs);

  const double rate_noobs =
      secs_noobs > 0.0 ? static_cast<double>(steps_noobs) / secs_noobs : 0.0;
  const double rate_obs =
      secs_obs > 0.0 ? static_cast<double>(steps_obs) / secs_obs : 0.0;
  recorder.note("steps_per_sec_noobs", rate_noobs);
  recorder.note("steps_per_sec_obs", rate_obs);
  if (rate_noobs > 0.0)
    recorder.note("observer_overhead_percent",
                  (rate_noobs - rate_obs) / rate_noobs * 100.0);
}

}  // namespace
}  // namespace sesp

int main(int argc, char** argv) {
  bool quick = false;
  const char* env = std::getenv("SESP_BENCH_QUICK");
  if (env && *env && std::string_view(env) != "0") quick = true;
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick")
      quick = true;
    else
      args.push_back(argv[i]);
  }

  sesp::obs::BenchRecorder recorder("substrates");
  recorder.note("mode", std::string(quick ? "quick" : "full"));

  sesp::register_benchmarks(quick);
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data()))
    return recorder.finish(false);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  sesp::measure_observer_overhead(recorder, quick);
  return recorder.finish(true);
}
