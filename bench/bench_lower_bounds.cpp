// Executable lower-bound constructions (the L rows of Table 1 that are the
// paper's theorems): each construction is applied to (a) a cheating
// algorithm terminating strictly below the bound — it must produce a
// machine-checked violation certificate (admissible computation, same
// behaviour, fewer than s sessions) — and (b) the correct algorithm — it
// must not.

#include <iostream>
#include <string>
#include <vector>

#include "adversary/contamination.hpp"
#include "adversary/periodic_attack.hpp"
#include "adversary/semisync_mp_retimer.hpp"
#include "adversary/semisync_retimer.hpp"
#include "adversary/sporadic_retimer.hpp"
#include "algorithms/mpm/broken_algs.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

#include "obs/bench_record.hpp"

using namespace sesp;

int main() {
  obs::BenchRecorder recorder("lower_bounds");
  bool ok = true;

  {
    std::cout << "== Theorem 4.3 (periodic SM): contamination spread vs "
                 "P_t = ((2b-1)^t - 1)/2 ==\n";
    TextTable table({"n", "b", "L", "subrounds", "exact <= taint", "bounds ok",
                     "correct alg survives", "cheater sessions (< s?)"});
    for (const std::int32_t n : {4, 9, 16, 27}) {
      for (const std::int32_t b : {2, 3}) {
        const ProblemSpec spec{4, n, b};
        const auto base = TimingConstraints::periodic(std::vector<Duration>(
            static_cast<std::size_t>(smm_total_processes(n, b)), Duration(1)));
        PeriodicSmmFactory correct;
        const ContaminationReport good =
            run_contamination_experiment(spec, base, correct, Duration(1));
        NoWaitPeriodicSmmFactory broken;
        const ContaminationReport bad = run_contamination_experiment(
            spec, base, broken, Duration(1), Duration(64));
        ok = ok && good.within_bound && good.survived && !bad.survived &&
             bad.sessions < spec.s && good.exact_within_taint &&
             good.exact_within_bound;
        std::int64_t max_pt = 0;
        for (const std::int64_t v : good.tainted_processes)
          max_pt = std::max(max_pt, v);
        std::int64_t max_exact = 0;
        for (const std::int64_t v : good.exact_contaminated)
          max_exact = std::max(max_exact, v);
        table.add_row({std::to_string(n), std::to_string(b),
                       std::to_string(good.L),
                       std::to_string(good.tainted_processes.size()),
                       std::to_string(max_exact) + " <= " +
                           std::to_string(max_pt),
                       good.within_bound && good.exact_within_taint &&
                               good.exact_within_bound
                           ? "yes"
                           : "NO",
                       good.survived ? "yes" : "NO",
                       std::to_string(bad.sessions) + " (" +
                           (bad.sessions < spec.s ? "yes" : "NO") + ")"});
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "== Theorem 4.2 (periodic MP): the d2 term via "
                 "indistinguishability ==\n";
    TextTable table({"s", "n", "d2", "target", "idles<d2", "sessions",
                     "certificate", "probe time >= max{s*c,d2}"});
    for (const std::int64_t s : {3, 4, 8}) {
      for (const std::int64_t d2v : {50, 200}) {
        const ProblemSpec spec{s, 4, 2};
        NoWaitPeriodicMpmFactory cheater;
        PeriodicMpmFactory correct;
        struct Case {
          const char* label;
          const MpmAlgorithmFactory* factory;
          bool expect_certificate;
        };
        for (const Case c :
             {Case{"cheater", &cheater, true}, Case{"correct", &correct,
                                                    false}}) {
          const PeriodicAttackResult r = attack_periodic_mpm(
              spec, Duration(1), Duration(d2v), *c.factory);
          const Ratio lower = max(Ratio(s) * Duration(1), Ratio(d2v));
          const bool probe_ok =
              c.expect_certificate || lower <= r.probe_termination;
          ok = ok && r.ran && r.certificate == c.expect_certificate &&
               probe_ok;
          table.add_row({std::to_string(s), "4", std::to_string(d2v),
                         c.label, r.idles_before_d2 ? "yes" : "no",
                         r.constructed ? std::to_string(r.sessions) : "-",
                         r.certificate ? "YES" : "no",
                         probe_ok ? "yes" : "NO"});
        }
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "== Theorem 5.1 (semi-sync SM): retiming construction ==\n";
    TextTable table({"s", "n", "c2/c1", "B", "target", "chunks", "sessions",
                     "all checks", "certificate"});
    for (const std::int64_t s : {3, 4, 6}) {
      for (const std::int64_t ratio : {12, 24}) {
        const ProblemSpec spec{s, 8, 2};
        const auto constraints = TimingConstraints::semi_synchronous(
            Duration(1), Duration(ratio));
        const std::int64_t B =
            semisync_safe_B(spec, Duration(1), Duration(ratio));
        struct Case {
          const char* label;
          const SmmAlgorithmFactory* factory;
          bool expect_certificate;
        };
        TooFewStepsSmmFactory cheater(std::max<std::int64_t>(B - 1, 1));
        SemiSyncSmmFactory correct(SmmSemiSyncStrategy::kStepCount);
        for (const Case c :
             {Case{"cheater", &cheater, true}, Case{"correct", &correct,
                                                    false}}) {
          const SemiSyncRetimingResult r =
              attack_semisync_smm(spec, constraints, *c.factory);
          const bool checks = r.constructed && r.order_consistent &&
                              r.replay_ok && r.split_properties_ok &&
                              r.admissibility.admissible;
          ok = ok && checks && r.certificate == c.expect_certificate;
          table.add_row({std::to_string(s), "8", std::to_string(ratio),
                         std::to_string(r.B), c.label,
                         std::to_string(r.chunks), std::to_string(r.sessions),
                         checks ? "ok" : "BAD",
                         r.certificate ? "YES" : "no"});
        }
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "== [2] Theorem 1 (async SM, rounds): reordering "
                 "construction via synthetic constants ==\n";
    TextTable table({"s", "n", "b", "B=log_b n", "target", "chunks",
                     "sessions", "all checks", "certificate"});
    for (const std::int64_t s : {3, 4, 6}) {
      for (const std::int32_t n : {8, 16}) {
        const ProblemSpec spec{s, n, 2};
        const std::int64_t L = bounds::floor_log(spec.b, spec.n);
        TooFewStepsSmmFactory cheater(std::max<std::int64_t>(L - 1, 1));
        AsyncSmmFactory correct;
        struct Case {
          const char* label;
          const SmmAlgorithmFactory* factory;
          bool expect_certificate;
        };
        for (const Case c :
             {Case{"cheater", &cheater, true}, Case{"correct", &correct,
                                                    false}}) {
          const SemiSyncRetimingResult r = attack_async_smm(spec, *c.factory);
          const bool checks = r.constructed && r.order_consistent &&
                              r.replay_ok && r.split_properties_ok &&
                              r.admissibility.admissible;
          ok = ok && checks && r.certificate == c.expect_certificate;
          table.add_row({std::to_string(s), std::to_string(n), "2",
                         std::to_string(r.B), c.label,
                         std::to_string(r.chunks), std::to_string(r.sessions),
                         checks ? "ok" : "BAD",
                         r.certificate ? "YES" : "no"});
        }
      }
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "== Theorem 6.5 (sporadic MP): scaled retiming construction "
                 "==\n";
    TextTable table({"s", "n", "u", "K", "B", "target", "chunks", "sessions",
                     "all checks", "certificate"});
    for (const std::int64_t s : {3, 4, 6}) {
      for (const std::int64_t d1v : {2, 8}) {
        const ProblemSpec spec{s, 3, 2};
        const Duration c1(1), d1(d1v), d2(42);
        const auto constraints = TimingConstraints::sporadic(c1, d1, d2);
        const std::int64_t B = ((d2 - d1) / (c1 * 4)).floor();
        TooFewStepsMpmFactory cheater(std::max<std::int64_t>(B - 2, 1));
        SporadicMpmFactory correct;
        struct Case {
          const char* label;
          const MpmAlgorithmFactory* factory;
          bool expect_certificate;
        };
        for (const Case c :
             {Case{"cheater", &cheater, true}, Case{"correct", &correct,
                                                    false}}) {
          const SporadicRetimingResult r =
              attack_sporadic_mpm(spec, constraints, *c.factory);
          const bool checks = r.constructed && r.order_consistent &&
                              r.receives_preserved &&
                              r.admissibility.admissible;
          ok = ok && checks && r.certificate == c.expect_certificate;
          table.add_row({std::to_string(s), "3", (d2 - d1).to_string(),
                         r.K.to_string(), std::to_string(r.B), c.label,
                         std::to_string(r.chunks), std::to_string(r.sessions),
                         checks ? "ok" : "BAD",
                         r.certificate ? "YES" : "no"});
        }
      }
    }
    table.print(std::cout);
  }

  {
    std::cout << "== [4] (semi-sync MP): half-compression construction ==\n";
    TextTable table({"s", "n", "c2", "d2", "B", "target", "chunks",
                     "sessions", "all checks", "certificate"});
    for (const std::int64_t s : {3, 4, 6}) {
      for (const std::int64_t c2v : {24, 48}) {
        const ProblemSpec spec{s, 3, 2};
        const auto constraints = TimingConstraints::semi_synchronous(
            Duration(1), Duration(c2v), Duration(48));
        const std::int64_t B = semisync_mp_safe_B(constraints);
        TooFewStepsMpmFactory cheater(std::max<std::int64_t>(B - 2, 1));
        SemiSyncMpmFactory correct;
        struct Case {
          const char* label;
          const MpmAlgorithmFactory* factory;
          bool expect_certificate;
        };
        for (const Case c :
             {Case{"cheater", &cheater, true}, Case{"correct", &correct,
                                                    false}}) {
          const SporadicRetimingResult r =
              attack_semisync_mpm(spec, constraints, *c.factory);
          const bool checks = r.constructed && r.order_consistent &&
                              r.receives_preserved &&
                              r.admissibility.admissible;
          ok = ok && checks && r.certificate == c.expect_certificate;
          table.add_row({std::to_string(s), "3", std::to_string(c2v), "48",
                         std::to_string(r.B), c.label,
                         std::to_string(r.chunks), std::to_string(r.sessions),
                         checks ? "ok" : "BAD",
                         r.certificate ? "YES" : "no"});
        }
      }
    }
    table.print(std::cout);
  }

  std::cout << (ok ? "[OK] all lower-bound constructions behaved as the "
                     "theorems predict\n"
                   : "[FAIL] a lower-bound construction misbehaved\n");
  return recorder.finish(ok);
}
