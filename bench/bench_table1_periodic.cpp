// Reproduces Table 1, row "Periodic" (Section 4, A(p)):
//   SM: L = max{s*c_max, floor(log_{2b-1}(2n-1))*c_min},
//       U = s*c_max + O(log_b n)*c_max
//   MP: L = max{s*c_max, d2},  U = s*c_max + d2
//
// Sweeps: s, n (showing the log-term growth in shared memory), the
// c_max/c_min spread, and d2 (showing the single-communication cost in
// message passing).

#include <iostream>
#include <string>
#include <vector>

#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "analysis/bounds.hpp"
#include "analysis/report.hpp"
#include "obs/bench_record.hpp"
#include "sim/experiment.hpp"

using namespace sesp;

namespace {

std::vector<Duration> spread_periods(std::int32_t count, const Duration& cmin,
                                     const Duration& cmax) {
  // Port 0 is the slowest; the rest interpolate between cmin and cmax.
  std::vector<Duration> periods(static_cast<std::size_t>(count), cmin);
  periods[0] = cmax;
  for (std::int32_t i = 1; i < count; ++i)
    periods[static_cast<std::size_t>(i)] =
        cmin + (cmax - cmin) * Ratio(i % 4, 8);
  return periods;
}

}  // namespace

int main() {
  obs::BenchRecorder recorder("table1_periodic");
  bool ok = true;

  {
    BoundReport report(
        "Table 1 / periodic SM: L = max{s*c_max, log_{2b-1}(2n-1)*c_min}, "
        "U = s*c_max + O(log_b n)*c_max  [A(p), tree broadcast]");
    for (const std::int64_t s : {2, 4, 8}) {
      for (const std::int32_t n : {2, 8, 27, 81}) {
        for (const std::int32_t b : {2, 4}) {
          const ProblemSpec spec{s, n, b};
          const std::int32_t total = smm_total_processes(n, b);
          const Duration cmin(1), cmax(3);
          const auto constraints = TimingConstraints::periodic(
              spread_periods(total, cmin, cmax));
          PeriodicSmmFactory factory;
          const WorstCase wc = smm_worst_case(spec, constraints, factory);
          report.add_time_row(
              "SM s=" + std::to_string(s) + " n=" + std::to_string(n) +
                  " b=" + std::to_string(b),
              bounds::periodic_sm_lower(spec, cmax, cmin), wc,
              bounds::periodic_sm_upper(spec, cmax,
                                        smm_tree_latency_steps(n, b)));
        }
      }
    }
    report.print(std::cout);
    report.append_rows(recorder);
    ok = ok && report.all_ok();
    std::cout << '\n';
  }

  {
    BoundReport report(
        "Table 1 / periodic MP: L = max{s*c_max, d2}, U = s*c_max + d2 "
        "[A(p)]");
    for (const std::int64_t s : {2, 4, 8}) {
      for (const std::int32_t n : {2, 8, 32}) {
        for (const std::int64_t d2v : {1, 10, 100}) {
          const ProblemSpec spec{s, n, 2};
          const Duration cmax(3), d2(d2v);
          const auto constraints = TimingConstraints::periodic(
              spread_periods(n, Duration(1), cmax), d2);
          PeriodicMpmFactory factory;
          const WorstCase wc = mpm_worst_case(spec, constraints, factory);
          report.add_time_row(
              "MP s=" + std::to_string(s) + " n=" + std::to_string(n) +
                  " d2=" + std::to_string(d2v),
              bounds::periodic_mp_lower(spec, cmax, d2), wc,
              bounds::periodic_mp_upper(spec, cmax, d2));
        }
      }
    }
    report.print(std::cout);
    report.append_rows(recorder);
    ok = ok && report.all_ok();
  }

  return recorder.finish(ok);
}
