// Distribution sweep: where the Table 1 benches report worst cases, this
// one shows how concentrated the running time is across many random
// admissible schedules per instance — min / mean / max over 60 seeds, with
// the Table 1 U as the ceiling. Two readings the aggregate benches hide:
//
//  * A(sp)'s time distribution tightens as the delay window narrows
//    (condition 2 becomes deterministic);
//  * the semi-synchronous auto strategy's spread stays within [L-ish, U]
//    regardless of the seed — the bounds really are schedule-independent.

#include <iostream>
#include <string>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include "obs/bench_record.hpp"

using namespace sesp;

namespace {
constexpr int kSeeds = 60;
}

int main() {
  obs::BenchRecorder recorder("distribution");
  bool ok = true;

  {
    std::cout << "== A(sp) time distribution over " << kSeeds
              << " random schedules (s=5, n=4, c1=1, d2=24) ==\n";
    TextTable table({"d1", "u", "min", "mean", "max", "max gamma",
                     "all within Thm 6.1 bound"});
    for (const std::int64_t d1v : {22, 16, 8, 0}) {
      const ProblemSpec spec{5, 4, 2};
      const auto constraints =
          TimingConstraints::sporadic(Duration(1), Duration(d1v),
                                      Duration(24));
      SporadicMpmFactory factory;
      Summary summary;
      Duration max_gamma(0);
      bool within = true;
      for (int seed = 0; seed < kSeeds; ++seed) {
        BurstyScheduler sched(Duration(1), 1, 7, 6, 1000 + 17 * seed);
        UniformRandomDelay delay(Duration(d1v), Duration(24),
                                 2000 + 19 * seed);
        const MpmOutcome out =
            run_mpm_once(spec, constraints, factory, sched, delay);
        ok = ok && out.verdict.solves && out.verdict.admissible;
        summary.add(*out.verdict.termination_time);
        const Duration gamma = *out.verdict.gamma;
        if (max_gamma < gamma) max_gamma = gamma;
        within = within &&
                 *out.verdict.termination_time <=
                     bounds::sporadic_mp_upper(spec, Duration(1),
                                               Duration(d1v), Duration(24),
                                               gamma);
      }
      ok = ok && within;
      table.add_row({std::to_string(d1v), std::to_string(24 - d1v),
                     fmt(summary.min()),
                     fmt_approx(Ratio(static_cast<std::int64_t>(
                                          summary.mean() * 1000),
                                      1000)),
                     fmt(summary.max()), fmt(max_gamma),
                     within ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  {
    std::cout << "== semi-sync auto strategy over " << kSeeds
              << " random schedules (s=5, n=4, c1=1, d2=16) ==\n";
    TextTable table({"c2", "branch", "min", "mean", "max", "Table 1 U",
                     "all within U"});
    for (const std::int64_t c2v : {2, 6, 24}) {
      const ProblemSpec spec{5, 4, 2};
      const auto constraints = TimingConstraints::semi_synchronous(
          Duration(1), Duration(c2v), Duration(16));
      SemiSyncMpmFactory factory;
      Summary summary;
      bool within = true;
      const Ratio upper = bounds::semisync_mp_upper(
          spec, Duration(1), Duration(c2v), Duration(16));
      for (int seed = 0; seed < kSeeds; ++seed) {
        UniformGapScheduler sched(Duration(1), Duration(c2v),
                                  3000 + 23 * seed);
        UniformRandomDelay delay(Duration(0), Duration(16), 4000 + 29 * seed);
        const MpmOutcome out =
            run_mpm_once(spec, constraints, factory, sched, delay);
        ok = ok && out.verdict.solves && out.verdict.admissible;
        summary.add(*out.verdict.termination_time);
        within = within && *out.verdict.termination_time <= upper;
      }
      ok = ok && within;
      const char* branch = SemiSyncMpmFactory::pick(constraints) ==
                                   SemiSyncStrategy::kStepCount
                               ? "steps"
                               : "comm";
      table.add_row({std::to_string(c2v), branch, fmt(summary.min()),
                     fmt_approx(Ratio(static_cast<std::int64_t>(
                                          summary.mean() * 1000),
                                      1000)),
                     fmt(summary.max()), fmt(upper), within ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  std::cout << (ok ? "[OK] every sampled schedule solved within its bound\n"
                   : "[FAIL] a sampled schedule escaped its bound\n");
  return recorder.finish(ok);
}
